//! The public LD operations: `Read`, `Write`, `NewBlock`, `DeleteBlock`,
//! `NewList`, `DeleteList`, and `BeginARU` (`Flush` lives in the
//! group-commit stage, [`crate::gc`]).
//!
//! Figure 2 of the paper summarises which operation affects which state;
//! this module implements exactly that table:
//!
//! * simple operations affect the merged (committed) stream;
//! * `Read`/`Write`/`DeleteBlock`/`DeleteList` inside an ARU affect that
//!   ARU's shadow state;
//! * `NewBlock`/`NewList` *always* allocate in the committed state (the
//!   allocation exception), with only the list insertion in the shadow
//!   state.
//!
//! Each operation locks only what it touches: reads take shared access
//! to the one shard their block hashes to (escalating to all shards
//! only when a list walk crosses a shard boundary), and the hot
//! mutations — `Write`, `NewBlock`, `NewList` — run in *scoped*
//! sessions over their identifiers' shards, so operations on disjoint
//! shards proceed fully in parallel. The deletions walk and unlink
//! across arbitrary identifiers and therefore run in full sessions, as
//! does any operation when free segments are scarce (only a full
//! session may run the cleaner inline).

use crate::aru::{Aru, ListOp};
use crate::config::{ConcurrencyMode, ReadVisibility};
use crate::error::{LldError, Result};
use crate::lld::{LldInner, Mutation, StateRef};
use crate::shard::{MapView, WalkOutcome};
use crate::summary::Record;
use crate::types::{AruId, BlockId, Ctx, ListId, PhysAddr, Position, Timestamp};
use ld_disk::BlockDevice;
use std::sync::atomic::Ordering;

/// How an operation's context maps onto the version states, given the
/// configured concurrency mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stream {
    /// Apply directly to the merged (committed) stream; records tagged
    /// with the ARU id when the op is inside a *sequential* ARU.
    Merged(Option<AruId>),
    /// Apply to the shadow state of a concurrent ARU.
    Shadow(AruId),
}

/// Where a read resolved its data.
enum DataSource {
    /// Buffered shadow data of an ARU.
    ShadowBuf(AruId),
    /// A physical address (committed or persistent data).
    Addr(PhysAddr),
    /// Allocated but never written: reads as zeroes.
    Zeros,
}

impl<D: BlockDevice> LldInner<D> {
    fn stream_of(&self, map: &MapView<'_>, ctx: Ctx) -> Result<Stream> {
        match ctx {
            Ctx::Simple => Ok(Stream::Merged(None)),
            Ctx::Aru(id) => {
                if !map.aru_contains(id.get()) {
                    return Err(LldError::UnknownAru(id));
                }
                self.obs.span_op(id.get());
                match self.concurrency {
                    ConcurrencyMode::Sequential => Ok(Stream::Merged(Some(id))),
                    ConcurrencyMode::Concurrent => Ok(Stream::Shadow(id)),
                }
            }
        }
    }

    /// The ARU-slot set a context needs: the slot its ARU hashes to,
    /// or none for simple operations.
    pub(crate) fn ctx_aru_set(&self, ctx: Ctx) -> u64 {
        match ctx {
            Ctx::Simple => 0,
            Ctx::Aru(id) => self.maps.bit_of(id.get()),
        }
    }

    /// Begins a new atomic recovery unit and returns its identifier.
    ///
    /// # Errors
    ///
    /// In [`ConcurrencyMode::Sequential`] (the paper's "old" version),
    /// returns [`LldError::ConcurrencyUnsupported`] if an ARU is already
    /// active.
    pub fn begin_aru(&self) -> Result<AruId> {
        let id = match self.concurrency {
            ConcurrencyMode::Sequential => {
                // The single-ARU invariant spans every slot.
                let mut slots = self.maps.lock_arus(self.maps.all_set());
                if let Some(raw) = slots.iter().flat_map(|(_, m)| m.keys().copied()).next() {
                    return Err(LldError::ConcurrencyUnsupported {
                        active: AruId::new(raw),
                    });
                }
                let ts = self.tick();
                let id = AruId::new(self.maps.next_aru_raw.fetch_add(1, Ordering::Relaxed));
                let idx = self.maps.shard_of(id.get());
                let slot = slots
                    .iter_mut()
                    .find(|(i, _)| *i == idx)
                    .expect("all slots held");
                slot.1.insert(id.get(), Aru::new(id, ts));
                self.obs.aru_begin(id.get(), ts.get());
                id
            }
            ConcurrencyMode::Concurrent => {
                let ts = self.tick();
                let id = AruId::new(self.maps.next_aru_raw.fetch_add(1, Ordering::Relaxed));
                let mut slots = self.maps.lock_arus(self.maps.bit_of(id.get()));
                slots[0].1.insert(id.get(), Aru::new(id, ts));
                self.obs.aru_begin(id.get(), ts.get());
                id
            }
        };
        self.stats.arus_begun.inc();
        Ok(id)
    }

    /// Allocates a new list.
    ///
    /// Allocation always happens in the committed state, even inside an
    /// ARU, so concurrent ARUs can never receive the same identifier.
    /// The owning shard is chosen round-robin, spreading independent
    /// lists (and the blocks later allocated on them, which share the
    /// list's shard) across the mapping-layer partitions.
    ///
    /// # Errors
    ///
    /// [`LldError::UnknownAru`] for a dead context;
    /// [`LldError::DiskFull`] at the allocation limit.
    pub fn new_list(&self, ctx: Ctx) -> Result<ListId> {
        self.cleaner_gate();
        let shard = self.maps.pick_list_shard();
        if self.scoped_ok() {
            let res = self.with_mutation_at(self.ctx_aru_set(ctx), 1u64 << shard, |m| {
                m.new_list_op(ctx, shard)
            });
            self.after_scoped();
            res
        } else {
            self.with_mutation(|m| m.new_list_op(ctx, shard))
        }
    }

    /// Deletes `list` together with any blocks still on it.
    ///
    /// Deleting the list directly — rather than first deallocating every
    /// block — avoids the per-block predecessor searches; this is the
    /// improved deletion policy of the paper's "new, delete"
    /// configuration. The walk can reach blocks on any shard, so the
    /// operation runs in a full session.
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] if the list is not visible in the
    /// operation's state.
    pub fn delete_list(&self, ctx: Ctx, list: ListId) -> Result<()> {
        self.with_mutation(|m| m.delete_list_op(ctx, list))
    }

    /// Allocates a new block on `list` at `pos`.
    ///
    /// The identifier allocation is committed immediately (even inside
    /// an ARU); the insertion into the list belongs to the operation's
    /// stream. Other streams therefore see the block as allocated but on
    /// no list until the ARU commits (§3.3). The block id is allocated
    /// from the *list's* shard, so building a list stays a single-shard
    /// operation.
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] /
    /// [`LldError::PredecessorNotOnList`] if the insertion target is
    /// invalid in the operation's state; [`LldError::DiskFull`] at the
    /// allocation limit.
    pub fn new_block(&self, ctx: Ctx, list: ListId, pos: Position) -> Result<BlockId> {
        self.cleaner_gate();
        if self.scoped_ok() {
            let mut set = self.maps.bit_of(list.get());
            if let Position::After(p) = pos {
                set |= self.maps.bit_of(p.get());
            }
            let res = self.with_mutation_at(self.ctx_aru_set(ctx), set, |m| {
                m.new_block_op(ctx, list, pos)
            });
            self.after_scoped();
            res
        } else {
            self.with_mutation(|m| m.new_block_op(ctx, list, pos))
        }
    }

    /// Removes `block` from its list and deallocates it.
    ///
    /// The predecessor search walks the whole list, which can reach any
    /// shard, so the operation runs in a full session.
    ///
    /// # Errors
    ///
    /// [`LldError::BlockNotAllocated`] if the block is not visible in
    /// the operation's state.
    pub fn delete_block(&self, ctx: Ctx, block: BlockId) -> Result<()> {
        self.with_mutation(|m| m.delete_block_op(ctx, block))
    }

    /// Writes one block of data.
    ///
    /// Inside a concurrent ARU the data is buffered in the ARU's shadow
    /// state and enters the segment stream at commit; otherwise it is
    /// appended to the current segment immediately. Either way the
    /// operation touches only the block's shard (plus the ARU's slot),
    /// so writers on disjoint shards proceed in parallel.
    ///
    /// # Errors
    ///
    /// [`LldError::WrongBlockLength`] if `data` is not exactly one
    /// block; [`LldError::BlockNotAllocated`] if the block is not
    /// visible in the operation's state.
    pub fn write(&self, ctx: Ctx, block: BlockId, data: &[u8]) -> Result<()> {
        if data.len() != self.layout.block_size {
            return Err(LldError::WrongBlockLength {
                got: data.len(),
                expected: self.layout.block_size,
            });
        }
        self.cleaner_gate();
        let timer = self.obs.timer();
        let res = if self.scoped_ok() {
            let r =
                self.with_mutation_at(self.ctx_aru_set(ctx), self.maps.bit_of(block.get()), |m| {
                    m.write_op(ctx, block, data)
                });
            self.after_scoped();
            r
        } else {
            self.with_mutation(|m| m.write_op(ctx, block, data))
        };
        if res.is_ok() {
            self.obs.write_done(timer);
        }
        res
    }

    /// Reads one block of data into `buf`.
    ///
    /// What the read sees is governed by the configured
    /// [`ReadVisibility`]; under the default option 3 a read inside an
    /// ARU sees that ARU's shadow state and nothing of other ARUs.
    /// A block that was allocated but never written reads as zeroes.
    ///
    /// Reads hold shared access to the one shard the block hashes to
    /// (plus the context ARU's slot), so reads of blocks on different
    /// shards never touch the same lock.
    ///
    /// # Errors
    ///
    /// [`LldError::WrongBlockLength`] if `buf` is not exactly one block;
    /// [`LldError::BlockNotAllocated`] if the block is not visible.
    pub fn read(&self, ctx: Ctx, block: BlockId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.layout.block_size {
            return Err(LldError::WrongBlockLength {
                got: buf.len(),
                expected: self.layout.block_size,
            });
        }
        // Validate the context (and classify the stream) first.
        let timer = self.obs.timer();
        let aru_set = if self.visibility == ReadVisibility::AnyShadow {
            // Option 1 scans every shadow state.
            self.maps.all_set()
        } else {
            self.ctx_aru_set(ctx)
        };
        let view = self.read_view(aru_set, self.maps.bit_of(block.get()));
        let stream = self.stream_of(&view, ctx)?;
        self.tick();
        self.stats.reads.inc();

        let source = self.resolve_read(&view, stream, block)?;
        let res = match source {
            DataSource::ShadowBuf(aru) => {
                let data = &view.aru(aru.get()).expect("resolved above").shadow_data[&block];
                buf.copy_from_slice(data);
                Ok(())
            }
            DataSource::Addr(addr) => self.read_block_data(addr, buf),
            DataSource::Zeros => {
                buf.fill(0);
                Ok(())
            }
        };
        if res.is_ok() {
            self.obs.read_done(timer);
        }
        res
    }

    fn resolve_read(
        &self,
        map: &MapView<'_>,
        stream: Stream,
        block: BlockId,
    ) -> Result<DataSource> {
        match self.visibility {
            ReadVisibility::OwnShadow => match stream {
                Stream::Shadow(aru) => self.resolve_shadow_chain(map, aru, block),
                Stream::Merged(_) => Self::resolve_committed(map, block),
            },
            ReadVisibility::Committed => Self::resolve_committed(map, block),
            ReadVisibility::AnyShadow => {
                // Most recent version across every shadow state and the
                // committed state (the view holds every ARU slot here).
                let mut best: Option<(Timestamp, DataSource, bool)> = None;
                for a in map.arus_held() {
                    if let Some(rec) = a.shadow.blocks.get(&block) {
                        let src = if a.shadow_data.contains_key(&block) {
                            DataSource::ShadowBuf(a.id)
                        } else {
                            match map.committed_view_block(block).and_then(|r| r.addr) {
                                Some(addr) => DataSource::Addr(addr),
                                None => DataSource::Zeros,
                            }
                        };
                        if best.as_ref().is_none_or(|(ts, _, _)| rec.ts > *ts) {
                            best = Some((rec.ts, src, rec.allocated));
                        }
                    }
                }
                if let Some(rec) = map.committed_view_block(block) {
                    if best.as_ref().is_none_or(|(ts, _, _)| rec.ts > *ts) {
                        let src = match rec.addr {
                            Some(addr) => DataSource::Addr(addr),
                            None => DataSource::Zeros,
                        };
                        best = Some((rec.ts, src, rec.allocated));
                    }
                }
                match best {
                    Some((_, src, true)) => Ok(src),
                    _ => Err(LldError::BlockNotAllocated(block)),
                }
            }
        }
    }

    fn resolve_shadow_chain(
        &self,
        map: &MapView<'_>,
        aru: AruId,
        block: BlockId,
    ) -> Result<DataSource> {
        let a = map.aru(aru.get()).expect("stream checked");
        if let Some(rec) = a.shadow.blocks.get(&block) {
            if !rec.allocated {
                return Err(LldError::BlockNotAllocated(block));
            }
            if a.shadow_data.contains_key(&block) {
                return Ok(DataSource::ShadowBuf(aru));
            }
            // The ARU touched the block's links but not its data: fall
            // through to the committed data.
            return match map.committed_view_block(block).and_then(|r| r.addr) {
                Some(addr) => Ok(DataSource::Addr(addr)),
                None => Ok(DataSource::Zeros),
            };
        }
        Self::resolve_committed(map, block)
    }

    fn resolve_committed(map: &MapView<'_>, block: BlockId) -> Result<DataSource> {
        let rec = map
            .committed_view_block(block)
            .filter(|r| r.allocated)
            .ok_or(LldError::BlockNotAllocated(block))?;
        Ok(match rec.addr {
            Some(addr) => DataSource::Addr(addr),
            None => DataSource::Zeros,
        })
    }

    /// Returns the blocks of `list` in order, as visible to `ctx` under
    /// the configured read visibility.
    ///
    /// Like [`read`](LldInner::read), holds only shared access — initially
    /// to the list's own shard. If the walk reaches a block on another
    /// shard, the view is dropped and re-acquired over all shards (one
    /// escalation at most, counted in `walk_escalations`).
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] if the list is not visible.
    pub fn list_blocks(&self, ctx: Ctx, list: ListId) -> Result<Vec<BlockId>> {
        let any_shadow = self.visibility == ReadVisibility::AnyShadow;
        let aru_set = if any_shadow {
            self.maps.all_set()
        } else {
            self.ctx_aru_set(ctx)
        };
        let mut shard_set = if any_shadow {
            self.maps.all_set()
        } else {
            self.maps.bit_of(list.get())
        };
        loop {
            let view = self.read_view(aru_set, shard_set);
            let stream = self.stream_of(&view, ctx)?;
            let st = match (self.visibility, stream) {
                (ReadVisibility::OwnShadow, Stream::Shadow(aru)) => StateRef::Shadow(aru),
                (ReadVisibility::AnyShadow, _) => {
                    // Walk with most-recent-shadow resolution: approximate by
                    // preferring the shadow of whichever ARU most recently
                    // touched the list record.
                    let best = view
                        .arus_held()
                        .filter_map(|a| a.shadow.lists.get(&list).map(|r| (r.ts, a.id)))
                        .max_by_key(|(ts, _)| *ts);
                    match (best, view.committed_view_list(list)) {
                        (Some((sts, aru)), Some(c)) if sts > c.ts => StateRef::Shadow(aru),
                        (Some((_, _)), Some(_)) => StateRef::Committed,
                        (Some((_, aru)), None) => StateRef::Shadow(aru),
                        _ => StateRef::Committed,
                    }
                }
                _ => StateRef::Committed,
            };
            match view.walk_list(st, list, self.layout.max_blocks)? {
                WalkOutcome::Done { members, steps } => {
                    self.stats.list_walk_steps.add(steps);
                    return Ok(members);
                }
                WalkOutcome::NeedShard(_) => {
                    // The list crosses shards: re-acquire over all of
                    // them. A second escalation is impossible.
                    drop(view);
                    self.stats.walk_escalations.inc();
                    shard_set = self.maps.all_set();
                }
            }
        }
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    fn stream(&self, ctx: Ctx) -> Result<Stream> {
        self.lld.stream_of(&self.map, ctx)
    }

    fn new_list_op(&mut self, ctx: Ctx, shard: u32) -> Result<ListId> {
        self.stream(ctx)?;
        let ts = self.tick();
        let id = self.alloc_list_id(shard)?;
        if let Err(e) = self.emit(Record::NewList { list: id, ts }) {
            self.lld.maps.unreserve_list();
            return Err(e);
        }
        self.map
            .list_shard_mut(id)
            .committed
            .lists
            .insert(id, crate::state::ListRecord::fresh(ts));
        self.lld.stats.new_lists.inc();
        Ok(id)
    }

    fn delete_list_op(&mut self, ctx: Ctx, list: ListId) -> Result<()> {
        let stream = self.stream(ctx)?;
        let ts = self.tick();
        self.lld.stats.delete_lists.inc();
        match stream {
            Stream::Merged(tag) => {
                let members = self.walk_list(StateRef::Committed, list)?;
                for &b in &members {
                    self.dealloc_block(StateRef::Committed, b, ts)?;
                }
                self.dealloc_list(StateRef::Committed, list, ts)?;
                self.emit_reserve(Record::DeleteList { list, ts, aru: tag }, 0)?;
                match tag {
                    None => {
                        self.release_ids(members, vec![list]);
                    }
                    Some(aru) => {
                        let a = self.map.aru_mut(aru.get()).expect("stream checked");
                        a.pending_free_blocks.extend(members);
                        a.pending_free_lists.push(list);
                    }
                }
            }
            Stream::Shadow(aru) => {
                let st = StateRef::Shadow(aru);
                let members = self.walk_list(st, list)?;
                for &b in &members {
                    self.dealloc_block(st, b, ts)?;
                    self.map
                        .aru_mut(aru.get())
                        .expect("stream checked")
                        .shadow_data
                        .remove(&b);
                }
                self.dealloc_list(st, list, ts)?;
                self.map
                    .aru_mut(aru.get())
                    .expect("stream checked")
                    .link_log
                    .push(ListOp::DeleteList { list });
            }
        }
        Ok(())
    }

    fn new_block_op(&mut self, ctx: Ctx, list: ListId, pos: Position) -> Result<BlockId> {
        let stream = self.stream(ctx)?;
        // Validate the insertion before allocating anything, so a failed
        // call leaves no trace.
        let target = match stream {
            Stream::Merged(_) => StateRef::Committed,
            Stream::Shadow(aru) => StateRef::Shadow(aru),
        };
        self.validate_insert(target, list, pos)?;

        let ts = self.tick();
        // The block id comes from the list's shard: the session already
        // holds it, and the list's members stay single-shard.
        let id = self.alloc_block_id(self.map.shard_of(list.get()))?;
        if let Err(e) = self.emit(Record::NewBlock { block: id, ts }) {
            self.lld.maps.unreserve_block();
            return Err(e);
        }
        self.map
            .block_shard_mut(id)
            .committed
            .blocks
            .insert(id, crate::state::BlockRecord::fresh(ts));
        self.lld.stats.new_blocks.inc();

        match stream {
            Stream::Merged(tag) => {
                self.insert_into_list(StateRef::Committed, list, id, pos, ts)?;
                self.emit(Record::Link {
                    list,
                    block: id,
                    pred: match pos {
                        Position::First => None,
                        Position::After(p) => Some(p),
                    },
                    ts,
                    aru: tag,
                })?;
            }
            Stream::Shadow(aru) => {
                self.insert_into_list(StateRef::Shadow(aru), list, id, pos, ts)?;
                self.map
                    .aru_mut(aru.get())
                    .expect("stream checked")
                    .link_log
                    .push(ListOp::Insert {
                        list,
                        block: id,
                        pred: match pos {
                            Position::First => None,
                            Position::After(p) => Some(p),
                        },
                    });
            }
        }
        Ok(id)
    }

    fn delete_block_op(&mut self, ctx: Ctx, block: BlockId) -> Result<()> {
        let stream = self.stream(ctx)?;
        let ts = self.tick();
        self.lld.stats.delete_blocks.inc();
        match stream {
            Stream::Merged(tag) => {
                self.map
                    .view_block(StateRef::Committed, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                self.unlink_block(StateRef::Committed, block, ts)?;
                self.dealloc_block(StateRef::Committed, block, ts)?;
                self.emit_reserve(
                    Record::DeleteBlock {
                        block,
                        ts,
                        aru: tag,
                    },
                    0,
                )?;
                match tag {
                    None => {
                        self.release_ids(vec![block], Vec::new());
                    }
                    Some(aru) => self
                        .map
                        .aru_mut(aru.get())
                        .expect("stream checked")
                        .pending_free_blocks
                        .push(block),
                }
            }
            Stream::Shadow(aru) => {
                let st = StateRef::Shadow(aru);
                self.map
                    .view_block(st, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                self.unlink_block(st, block, ts)?;
                self.dealloc_block(st, block, ts)?;
                let a = self.map.aru_mut(aru.get()).expect("stream checked");
                a.shadow_data.remove(&block);
                a.link_log.push(ListOp::DeleteBlock { block });
            }
        }
        Ok(())
    }

    fn write_op(&mut self, ctx: Ctx, block: BlockId, data: &[u8]) -> Result<()> {
        let stream = self.stream(ctx)?;
        let ts = self.tick();
        self.lld.stats.writes.inc();
        match stream {
            Stream::Merged(tag) => {
                self.map
                    .view_block(StateRef::Committed, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                self.place_block_data(block, data, ts, tag, 1)?;
            }
            Stream::Shadow(aru) => {
                let st = StateRef::Shadow(aru);
                self.map
                    .view_block(st, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                {
                    let bm = self.block_mut(st, block)?;
                    bm.ts = ts;
                }
                self.map
                    .aru_mut(aru.get())
                    .expect("stream checked")
                    .shadow_data
                    .insert(block, data.to_vec());
            }
        }
        Ok(())
    }
}
