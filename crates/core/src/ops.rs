//! The public LD operations: `Read`, `Write`, `NewBlock`, `DeleteBlock`,
//! `NewList`, `DeleteList`, and `BeginARU` (`Flush` lives in the
//! group-commit stage, [`crate::gc`]).
//!
//! Figure 2 of the paper summarises which operation affects which state;
//! this module implements exactly that table:
//!
//! * simple operations affect the merged (committed) stream;
//! * `Read`/`Write`/`DeleteBlock`/`DeleteList` inside an ARU affect that
//!   ARU's shadow state;
//! * `NewBlock`/`NewList` *always* allocate in the committed state (the
//!   allocation exception), with only the list insertion in the shadow
//!   state.
//!
//! Reads (`read`, `list_blocks`) take only shared access to the mapping
//! layer and so proceed concurrently; mutations run in an exclusive
//! [`Mutation`] session over both layers.

use crate::aru::{Aru, ListOp};
use crate::config::{ConcurrencyMode, ReadVisibility};
use crate::error::{LldError, Result};
use crate::lld::{Lld, MapState, Mutation, StateRef};
use crate::summary::Record;
use crate::types::{AruId, BlockId, Ctx, ListId, PhysAddr, Position, Timestamp};
use ld_disk::BlockDevice;

/// How an operation's context maps onto the version states, given the
/// configured concurrency mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stream {
    /// Apply directly to the merged (committed) stream; records tagged
    /// with the ARU id when the op is inside a *sequential* ARU.
    Merged(Option<AruId>),
    /// Apply to the shadow state of a concurrent ARU.
    Shadow(AruId),
}

/// Where a read resolved its data.
enum DataSource {
    /// Buffered shadow data of an ARU.
    ShadowBuf(AruId),
    /// A physical address (committed or persistent data).
    Addr(PhysAddr),
    /// Allocated but never written: reads as zeroes.
    Zeros,
}

impl<D: BlockDevice> Lld<D> {
    fn stream_of(&self, map: &MapState, ctx: Ctx) -> Result<Stream> {
        match ctx {
            Ctx::Simple => Ok(Stream::Merged(None)),
            Ctx::Aru(id) => {
                if !map.arus.contains_key(&id.get()) {
                    return Err(LldError::UnknownAru(id));
                }
                self.obs.span_op(id.get());
                match self.concurrency {
                    ConcurrencyMode::Sequential => Ok(Stream::Merged(Some(id))),
                    ConcurrencyMode::Concurrent => Ok(Stream::Shadow(id)),
                }
            }
        }
    }

    /// Begins a new atomic recovery unit and returns its identifier.
    ///
    /// # Errors
    ///
    /// In [`ConcurrencyMode::Sequential`] (the paper's "old" version),
    /// returns [`LldError::ConcurrencyUnsupported`] if an ARU is already
    /// active.
    pub fn begin_aru(&self) -> Result<AruId> {
        let mut map = self.map.write();
        if self.concurrency == ConcurrencyMode::Sequential {
            if let Some((&raw, _)) = map.arus.iter().next() {
                return Err(LldError::ConcurrencyUnsupported {
                    active: AruId::new(raw),
                });
            }
        }
        let ts = self.tick();
        let id = AruId::new(map.next_aru_raw);
        map.next_aru_raw += 1;
        map.arus.insert(id.get(), Aru::new(id, ts));
        self.stats.arus_begun.inc();
        self.obs.aru_begin(id.get(), ts.get());
        Ok(id)
    }

    /// Allocates a new list.
    ///
    /// Allocation always happens in the committed state, even inside an
    /// ARU, so concurrent ARUs can never receive the same identifier.
    ///
    /// # Errors
    ///
    /// [`LldError::UnknownAru`] for a dead context;
    /// [`LldError::DiskFull`] at the allocation limit.
    pub fn new_list(&self, ctx: Ctx) -> Result<ListId> {
        self.with_mutation(|m| m.new_list_op(ctx))
    }

    /// Deletes `list` together with any blocks still on it.
    ///
    /// Deleting the list directly — rather than first deallocating every
    /// block — avoids the per-block predecessor searches; this is the
    /// improved deletion policy of the paper's "new, delete"
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] if the list is not visible in the
    /// operation's state.
    pub fn delete_list(&self, ctx: Ctx, list: ListId) -> Result<()> {
        self.with_mutation(|m| m.delete_list_op(ctx, list))
    }

    /// Allocates a new block on `list` at `pos`.
    ///
    /// The identifier allocation is committed immediately (even inside
    /// an ARU); the insertion into the list belongs to the operation's
    /// stream. Other streams therefore see the block as allocated but on
    /// no list until the ARU commits (§3.3).
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] /
    /// [`LldError::PredecessorNotOnList`] if the insertion target is
    /// invalid in the operation's state; [`LldError::DiskFull`] at the
    /// allocation limit.
    pub fn new_block(&self, ctx: Ctx, list: ListId, pos: Position) -> Result<BlockId> {
        self.with_mutation(|m| m.new_block_op(ctx, list, pos))
    }

    /// Removes `block` from its list and deallocates it.
    ///
    /// # Errors
    ///
    /// [`LldError::BlockNotAllocated`] if the block is not visible in
    /// the operation's state.
    pub fn delete_block(&self, ctx: Ctx, block: BlockId) -> Result<()> {
        self.with_mutation(|m| m.delete_block_op(ctx, block))
    }

    /// Writes one block of data.
    ///
    /// Inside a concurrent ARU the data is buffered in the ARU's shadow
    /// state and enters the segment stream at commit; otherwise it is
    /// appended to the current segment immediately.
    ///
    /// # Errors
    ///
    /// [`LldError::WrongBlockLength`] if `data` is not exactly one
    /// block; [`LldError::BlockNotAllocated`] if the block is not
    /// visible in the operation's state.
    pub fn write(&self, ctx: Ctx, block: BlockId, data: &[u8]) -> Result<()> {
        if data.len() != self.layout.block_size {
            return Err(LldError::WrongBlockLength {
                got: data.len(),
                expected: self.layout.block_size,
            });
        }
        let timer = self.obs.timer();
        let res = self.with_mutation(|m| m.write_op(ctx, block, data));
        if res.is_ok() {
            self.obs.write_done(timer);
        }
        res
    }

    /// Reads one block of data into `buf`.
    ///
    /// What the read sees is governed by the configured
    /// [`ReadVisibility`]; under the default option 3 a read inside an
    /// ARU sees that ARU's shadow state and nothing of other ARUs.
    /// A block that was allocated but never written reads as zeroes.
    ///
    /// Reads hold only shared access to the mapping layer, so any number
    /// of them proceed concurrently (with each other and with nothing
    /// else mutating).
    ///
    /// # Errors
    ///
    /// [`LldError::WrongBlockLength`] if `buf` is not exactly one block;
    /// [`LldError::BlockNotAllocated`] if the block is not visible.
    pub fn read(&self, ctx: Ctx, block: BlockId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.layout.block_size {
            return Err(LldError::WrongBlockLength {
                got: buf.len(),
                expected: self.layout.block_size,
            });
        }
        // Validate the context (and classify the stream) first.
        let timer = self.obs.timer();
        let map = self.map.read();
        let stream = self.stream_of(&map, ctx)?;
        self.tick();
        self.stats.reads.inc();

        let source = self.resolve_read(&map, stream, block)?;
        let res = match source {
            DataSource::ShadowBuf(aru) => {
                let data = &map.arus[&aru.get()].shadow_data[&block];
                buf.copy_from_slice(data);
                Ok(())
            }
            DataSource::Addr(addr) => self.read_block_data(addr, buf),
            DataSource::Zeros => {
                buf.fill(0);
                Ok(())
            }
        };
        if res.is_ok() {
            self.obs.read_done(timer);
        }
        res
    }

    fn resolve_read(&self, map: &MapState, stream: Stream, block: BlockId) -> Result<DataSource> {
        match self.visibility {
            ReadVisibility::OwnShadow => match stream {
                Stream::Shadow(aru) => self.resolve_shadow_chain(map, aru, block),
                Stream::Merged(_) => Self::resolve_committed(map, block),
            },
            ReadVisibility::Committed => Self::resolve_committed(map, block),
            ReadVisibility::AnyShadow => {
                // Most recent version across every shadow state and the
                // committed state.
                let mut best: Option<(Timestamp, DataSource, bool)> = None;
                for a in map.arus.values() {
                    if let Some(rec) = a.shadow.blocks.get(&block) {
                        let src = if a.shadow_data.contains_key(&block) {
                            DataSource::ShadowBuf(a.id)
                        } else {
                            match map.committed_view_block(block).and_then(|r| r.addr) {
                                Some(addr) => DataSource::Addr(addr),
                                None => DataSource::Zeros,
                            }
                        };
                        if best.as_ref().is_none_or(|(ts, _, _)| rec.ts > *ts) {
                            best = Some((rec.ts, src, rec.allocated));
                        }
                    }
                }
                if let Some(rec) = map.committed_view_block(block) {
                    if best.as_ref().is_none_or(|(ts, _, _)| rec.ts > *ts) {
                        let src = match rec.addr {
                            Some(addr) => DataSource::Addr(addr),
                            None => DataSource::Zeros,
                        };
                        best = Some((rec.ts, src, rec.allocated));
                    }
                }
                match best {
                    Some((_, src, true)) => Ok(src),
                    _ => Err(LldError::BlockNotAllocated(block)),
                }
            }
        }
    }

    fn resolve_shadow_chain(
        &self,
        map: &MapState,
        aru: AruId,
        block: BlockId,
    ) -> Result<DataSource> {
        let a = &map.arus[&aru.get()];
        if let Some(rec) = a.shadow.blocks.get(&block) {
            if !rec.allocated {
                return Err(LldError::BlockNotAllocated(block));
            }
            if a.shadow_data.contains_key(&block) {
                return Ok(DataSource::ShadowBuf(aru));
            }
            // The ARU touched the block's links but not its data: fall
            // through to the committed data.
            return match map.committed_view_block(block).and_then(|r| r.addr) {
                Some(addr) => Ok(DataSource::Addr(addr)),
                None => Ok(DataSource::Zeros),
            };
        }
        Self::resolve_committed(map, block)
    }

    fn resolve_committed(map: &MapState, block: BlockId) -> Result<DataSource> {
        let rec = map
            .committed_view_block(block)
            .filter(|r| r.allocated)
            .ok_or(LldError::BlockNotAllocated(block))?;
        Ok(match rec.addr {
            Some(addr) => DataSource::Addr(addr),
            None => DataSource::Zeros,
        })
    }

    /// Returns the blocks of `list` in order, as visible to `ctx` under
    /// the configured read visibility.
    ///
    /// Like [`read`](Lld::read), holds only shared access to the mapping
    /// layer.
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] if the list is not visible.
    pub fn list_blocks(&self, ctx: Ctx, list: ListId) -> Result<Vec<BlockId>> {
        let map = self.map.read();
        let stream = self.stream_of(&map, ctx)?;
        let st = match (self.visibility, stream) {
            (ReadVisibility::OwnShadow, Stream::Shadow(aru)) => StateRef::Shadow(aru),
            (ReadVisibility::AnyShadow, _) => {
                // Walk with most-recent-shadow resolution: approximate by
                // preferring the shadow of whichever ARU most recently
                // touched the list record.
                let best = map
                    .arus
                    .values()
                    .filter_map(|a| a.shadow.lists.get(&list).map(|r| (r.ts, a.id)))
                    .max_by_key(|(ts, _)| *ts);
                match (best, map.committed_view_list(list)) {
                    (Some((sts, aru)), Some(c)) if sts > c.ts => StateRef::Shadow(aru),
                    (Some((_, _)), Some(_)) => StateRef::Committed,
                    (Some((_, aru)), None) => StateRef::Shadow(aru),
                    _ => StateRef::Committed,
                }
            }
            _ => StateRef::Committed,
        };
        let (members, steps) = map.walk_list(st, list, self.layout.max_blocks)?;
        self.stats.list_walk_steps.add(steps);
        Ok(members)
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    fn stream(&self, ctx: Ctx) -> Result<Stream> {
        self.lld.stream_of(self.map, ctx)
    }

    fn new_list_op(&mut self, ctx: Ctx) -> Result<ListId> {
        self.stream(ctx)?;
        let ts = self.tick();
        let id = self.alloc_list_id()?;
        self.emit(Record::NewList { list: id, ts })?;
        self.map
            .committed
            .lists
            .insert(id, crate::state::ListRecord::fresh(ts));
        self.map.allocated_lists += 1;
        self.lld.stats.new_lists.inc();
        Ok(id)
    }

    fn delete_list_op(&mut self, ctx: Ctx, list: ListId) -> Result<()> {
        let stream = self.stream(ctx)?;
        let ts = self.tick();
        self.lld.stats.delete_lists.inc();
        match stream {
            Stream::Merged(tag) => {
                let members = self.walk_list(StateRef::Committed, list)?;
                for &b in &members {
                    self.dealloc_block(StateRef::Committed, b, ts)?;
                }
                self.dealloc_list(StateRef::Committed, list, ts)?;
                self.emit_reserve(Record::DeleteList { list, ts, aru: tag }, 0)?;
                match tag {
                    None => {
                        for b in members {
                            self.map.free_blocks.insert(b.get());
                        }
                        self.map.free_lists.insert(list.get());
                    }
                    Some(aru) => {
                        let a = self.map.arus.get_mut(&aru.get()).expect("stream checked");
                        a.pending_free_blocks.extend(members);
                        a.pending_free_lists.push(list);
                    }
                }
            }
            Stream::Shadow(aru) => {
                let st = StateRef::Shadow(aru);
                let members = self.walk_list(st, list)?;
                for &b in &members {
                    self.dealloc_block(st, b, ts)?;
                    self.map
                        .arus
                        .get_mut(&aru.get())
                        .expect("stream checked")
                        .shadow_data
                        .remove(&b);
                }
                self.dealloc_list(st, list, ts)?;
                self.map
                    .arus
                    .get_mut(&aru.get())
                    .expect("stream checked")
                    .link_log
                    .push(ListOp::DeleteList { list });
            }
        }
        Ok(())
    }

    fn new_block_op(&mut self, ctx: Ctx, list: ListId, pos: Position) -> Result<BlockId> {
        let stream = self.stream(ctx)?;
        // Validate the insertion before allocating anything, so a failed
        // call leaves no trace.
        let target = match stream {
            Stream::Merged(_) => StateRef::Committed,
            Stream::Shadow(aru) => StateRef::Shadow(aru),
        };
        self.validate_insert(target, list, pos)?;

        let ts = self.tick();
        let id = self.alloc_block_id()?;
        self.emit(Record::NewBlock { block: id, ts })?;
        self.map
            .committed
            .blocks
            .insert(id, crate::state::BlockRecord::fresh(ts));
        self.map.allocated_blocks += 1;
        self.lld.stats.new_blocks.inc();

        match stream {
            Stream::Merged(tag) => {
                self.insert_into_list(StateRef::Committed, list, id, pos, ts)?;
                self.emit(Record::Link {
                    list,
                    block: id,
                    pred: match pos {
                        Position::First => None,
                        Position::After(p) => Some(p),
                    },
                    ts,
                    aru: tag,
                })?;
            }
            Stream::Shadow(aru) => {
                self.insert_into_list(StateRef::Shadow(aru), list, id, pos, ts)?;
                self.map
                    .arus
                    .get_mut(&aru.get())
                    .expect("stream checked")
                    .link_log
                    .push(ListOp::Insert {
                        list,
                        block: id,
                        pred: match pos {
                            Position::First => None,
                            Position::After(p) => Some(p),
                        },
                    });
            }
        }
        Ok(id)
    }

    fn delete_block_op(&mut self, ctx: Ctx, block: BlockId) -> Result<()> {
        let stream = self.stream(ctx)?;
        let ts = self.tick();
        self.lld.stats.delete_blocks.inc();
        match stream {
            Stream::Merged(tag) => {
                self.map
                    .view_block(StateRef::Committed, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                self.unlink_block(StateRef::Committed, block, ts)?;
                self.dealloc_block(StateRef::Committed, block, ts)?;
                self.emit_reserve(
                    Record::DeleteBlock {
                        block,
                        ts,
                        aru: tag,
                    },
                    0,
                )?;
                match tag {
                    None => {
                        self.map.free_blocks.insert(block.get());
                    }
                    Some(aru) => self
                        .map
                        .arus
                        .get_mut(&aru.get())
                        .expect("stream checked")
                        .pending_free_blocks
                        .push(block),
                }
            }
            Stream::Shadow(aru) => {
                let st = StateRef::Shadow(aru);
                self.map
                    .view_block(st, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                self.unlink_block(st, block, ts)?;
                self.dealloc_block(st, block, ts)?;
                let a = self.map.arus.get_mut(&aru.get()).expect("stream checked");
                a.shadow_data.remove(&block);
                a.link_log.push(ListOp::DeleteBlock { block });
            }
        }
        Ok(())
    }

    fn write_op(&mut self, ctx: Ctx, block: BlockId, data: &[u8]) -> Result<()> {
        let stream = self.stream(ctx)?;
        let ts = self.tick();
        self.lld.stats.writes.inc();
        match stream {
            Stream::Merged(tag) => {
                self.map
                    .view_block(StateRef::Committed, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                self.place_block_data(block, data, ts, tag, 1)?;
            }
            Stream::Shadow(aru) => {
                let st = StateRef::Shadow(aru);
                self.map
                    .view_block(st, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                {
                    let bm = self.block_mut(st, block)?;
                    bm.ts = ts;
                }
                self.map
                    .arus
                    .get_mut(&aru.get())
                    .expect("stream checked")
                    .shadow_data
                    .insert(block, data.to_vec());
            }
        }
        Ok(())
    }
}
