//! The sharded mapping layer: hash-partitioned shards of the
//! block-number-map and list-table, the ARU descriptor table, and the
//! lock-set machinery mutation sessions use to acquire them in a
//! deadlock-free order.
//!
//! Identifiers hash to a shard by `id & (nshards - 1)` (`nshards` is a
//! power of two, at most 64 so a shard set fits a `u64` bitmask). Each
//! shard owns the persistent and committed records of its identifiers
//! *and* a stripe of the identifier allocators: shard `s` hands out ids
//! congruent to `s` modulo `nshards`, so allocation never crosses a
//! shard boundary. ARU descriptors live in a parallel table of mutex
//! slots, keyed by `aru_id & (nshards - 1)`.
//!
//! Lock hierarchy (see docs/CONCURRENCY.md): ARU slots in ascending
//! index order, then map shards in ascending index order, then the log
//! mutex. [`Maps::lock_arus`] / [`Maps::lock_read`] /
//! [`Maps::lock_write`] each iterate a bitmask ascending, and callers
//! always take ARU slots before shards, so any two sessions acquire
//! their common locks in the same global order.

use crate::aru::Aru;
use crate::error::{LldError, Result};
use crate::state::{BlockRecord, ListRecord, StateOverlay, Tables};
use crate::stats::Counter;
use crate::types::{AruId, BlockId, ListId, Position};
use ld_disk::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Raw id of the scratch ARU used to validate a commit's list-operation
/// log without touching any real state. Never allocated to a client
/// (the allocator counts up from 1), and resolved by [`MapView::aru`]
/// before any table lookup, so a scratch session needs no ARU slot.
pub(crate) const SCRATCH_ARU_RAW: u64 = u64::MAX;

/// Which version state an internal operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StateRef {
    /// The merged stream's committed state.
    Committed,
    /// The shadow state of one ARU (resolution falls through to the
    /// committed state, which falls through to the persistent state —
    /// the paper's standardised search).
    Shadow(AruId),
}

/// One hash partition of the mapping layer.
#[derive(Debug)]
pub(crate) struct MapShard {
    /// Persistent state: this shard's stripe of the block-number-map
    /// and list-table.
    pub(crate) persistent: Tables,
    /// Committed-but-not-yet-persistent alternative records.
    pub(crate) committed: StateOverlay,
    /// Next never-used block id owned by this shard (congruent to the
    /// shard index modulo the shard count).
    pub(crate) next_block_raw: u64,
    pub(crate) free_blocks: BTreeSet<u64>,
    pub(crate) next_list_raw: u64,
    pub(crate) free_lists: BTreeSet<u64>,
    /// An incremental checkpoint has covered this shard's log prefix
    /// but not yet written its snapshot slab: the next committed-state
    /// drain must preserve the persistent tables as of the covered
    /// point (see [`snap_copy`](Self::snap_copy)).
    pub(crate) snap_pending: bool,
    /// Copy-on-advance snapshot: the persistent tables as they stood
    /// when the in-flight incremental checkpoint chose its covered
    /// sequence number, cloned lazily by the first drain that would
    /// advance a pending shard past that point.
    pub(crate) snap_copy: Option<Tables>,
}

/// Smallest valid identifier owned by shard `idx` that is `>= floor`
/// (identifier 0 is reserved, so shard 0's stripe starts at `n`).
pub(crate) fn striped_ceil(floor: u64, idx: u32, n: u64) -> u64 {
    let floor = floor.max(1);
    let r = floor % n;
    floor + ((u64::from(idx) + n - r) % n)
}

impl MapShard {
    fn fresh(idx: u32, n: u64) -> Self {
        MapShard {
            persistent: Tables::default(),
            committed: StateOverlay::default(),
            next_block_raw: striped_ceil(1, idx, n),
            free_blocks: BTreeSet::new(),
            next_list_raw: striped_ceil(1, idx, n),
            free_lists: BTreeSet::new(),
            snap_pending: false,
            snap_copy: None,
        }
    }

    pub(crate) fn alloc_block_raw(&mut self, n: u64) -> u64 {
        match self.free_blocks.pop_first() {
            Some(raw) => raw,
            None => {
                let raw = self.next_block_raw;
                self.next_block_raw += n;
                raw
            }
        }
    }

    pub(crate) fn alloc_list_raw(&mut self, n: u64) -> u64 {
        match self.free_lists.pop_first() {
            Some(raw) => raw,
            None => {
                let raw = self.next_list_raw;
                self.next_list_raw += n;
                raw
            }
        }
    }

    /// Records that block id `raw` is in use (recovery replay): it
    /// leaves the free set and the allocator is raised past it.
    pub(crate) fn note_block_id(&mut self, raw: u64, n: u64) {
        self.free_blocks.remove(&raw);
        self.next_block_raw = self.next_block_raw.max(raw + n);
    }

    pub(crate) fn note_list_id(&mut self, raw: u64, n: u64) {
        self.free_lists.remove(&raw);
        self.next_list_raw = self.next_list_raw.max(raw + n);
    }
}

/// Per-shard lock-acquisition counters, surfaced through
/// [`ObsSnapshot`](crate::obs::ObsSnapshot) and `ldctl stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLockStats {
    /// Shard index.
    pub shard: u32,
    /// Shared (read) acquisitions of this shard's lock.
    pub read_locks: u64,
    /// Exclusive (write) acquisitions of this shard's lock.
    pub write_locks: u64,
}

#[derive(Debug)]
struct ShardSlot {
    lock: RwLock<MapShard>,
    read_locks: Counter,
    write_locks: Counter,
}

/// The sharded mapping layer of one logical disk: all map shards, the
/// ARU descriptor table, and the lock-free allocator state shared
/// between shards.
#[derive(Debug)]
pub(crate) struct Maps {
    shards: Vec<ShardSlot>,
    arus: Vec<Mutex<BTreeMap<u64, Aru>>>,
    pub(crate) next_aru_raw: AtomicU64,
    /// Round-robin cursor choosing the owning shard of the next new
    /// list, so independent lists spread across shards.
    list_rr: AtomicU64,
    pub(crate) allocated_blocks: AtomicU64,
    pub(crate) allocated_lists: AtomicU64,
}

impl Maps {
    pub(crate) fn fresh(nshards: usize) -> Self {
        let n = nshards as u64;
        Self::wrap(
            (0..nshards as u32).map(|i| MapShard::fresh(i, n)).collect(),
            0,
            0,
        )
    }

    /// Builds the sharded layer from recovered checkpoint tables:
    /// records are distributed to their owning shards and each shard's
    /// allocators start at its first id at or above the checkpoint's
    /// global floor (then raised past every id actually present).
    pub(crate) fn from_tables(
        nshards: usize,
        tables: Tables,
        block_floor: u64,
        list_floor: u64,
    ) -> Self {
        let n = nshards as u64;
        let mut shards: Vec<MapShard> = (0..nshards as u32)
            .map(|i| {
                let mut s = MapShard::fresh(i, n);
                s.next_block_raw = striped_ceil(block_floor, i, n);
                s.next_list_raw = striped_ceil(list_floor, i, n);
                s
            })
            .collect();
        let mask = n - 1;
        let nb = tables.blocks.len() as u64;
        let nl = tables.lists.len() as u64;
        for (id, rec) in tables.blocks {
            let s = &mut shards[(id.get() & mask) as usize];
            s.note_block_id(id.get(), n);
            s.persistent.blocks.insert(id, rec);
        }
        for (id, rec) in tables.lists {
            let s = &mut shards[(id.get() & mask) as usize];
            s.note_list_id(id.get(), n);
            s.persistent.lists.insert(id, rec);
        }
        Self::wrap(shards, nb, nl)
    }

    fn wrap(shards: Vec<MapShard>, nb: u64, nl: u64) -> Self {
        let count = shards.len();
        debug_assert!(count.is_power_of_two() && count <= 64);
        Maps {
            shards: shards
                .into_iter()
                .map(|s| ShardSlot {
                    lock: RwLock::new(s),
                    read_locks: Counter::default(),
                    write_locks: Counter::default(),
                })
                .collect(),
            arus: (0..count).map(|_| Mutex::new(BTreeMap::new())).collect(),
            next_aru_raw: AtomicU64::new(1),
            // Start at the shard owning raw id 1, so the first list on a
            // fresh disk gets id 1 under every shard count (clients pin
            // well-known metadata to it).
            list_rr: AtomicU64::new(1 % count as u64),
            allocated_blocks: AtomicU64::new(nb),
            allocated_lists: AtomicU64::new(nl),
        }
    }

    pub(crate) fn nshards(&self) -> u32 {
        self.shards.len() as u32
    }

    pub(crate) fn mask(&self) -> u64 {
        self.shards.len() as u64 - 1
    }

    pub(crate) fn shard_of(&self, raw: u64) -> u32 {
        (raw & self.mask()) as u32
    }

    /// The bitmask selecting every shard (and every ARU slot).
    pub(crate) fn all_set(&self) -> u64 {
        if self.shards.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.shards.len()) - 1
        }
    }

    pub(crate) fn bit_of(&self, raw: u64) -> u64 {
        1u64 << self.shard_of(raw)
    }

    /// The shard that will own the next new list (advances the
    /// round-robin cursor).
    pub(crate) fn pick_list_shard(&self) -> u32 {
        (self.list_rr.fetch_add(1, Ordering::Relaxed) & self.mask()) as u32
    }

    /// Reserves one block allocation against `max`, atomically.
    pub(crate) fn try_reserve_block(&self, max: u64) -> Result<()> {
        self.allocated_blocks
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < max).then_some(n + 1)
            })
            .map(|_| ())
            .map_err(|_| LldError::DiskFull)
    }

    pub(crate) fn try_reserve_list(&self, max: u64) -> Result<()> {
        self.allocated_lists
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < max).then_some(n + 1)
            })
            .map(|_| ())
            .map_err(|_| LldError::DiskFull)
    }

    pub(crate) fn unreserve_block(&self) {
        let _ = self
            .allocated_blocks
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }

    pub(crate) fn unreserve_list(&self) {
        let _ = self
            .allocated_lists
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
    }

    fn bits(&self, set: u64) -> impl Iterator<Item = u32> + '_ {
        (0..self.nshards()).filter(move |i| set & (1u64 << i) != 0)
    }

    /// Locks the ARU slots in `set`, ascending.
    pub(crate) fn lock_arus(&self, set: u64) -> Vec<(u32, MutexGuard<'_, BTreeMap<u64, Aru>>)> {
        self.bits(set)
            .map(|i| (i, self.arus[i as usize].lock()))
            .collect()
    }

    /// Read-locks the shards in `set`, ascending.
    pub(crate) fn lock_read(&self, set: u64) -> Vec<(u32, ShardGuard<'_>)> {
        self.bits(set)
            .map(|i| {
                let slot = &self.shards[i as usize];
                slot.read_locks.inc();
                (i, ShardGuard::Read(slot.lock.read()))
            })
            .collect()
    }

    /// Write-locks the shards in `set`, ascending.
    pub(crate) fn lock_write(&self, set: u64) -> Vec<(u32, ShardGuard<'_>)> {
        self.bits(set)
            .map(|i| {
                let slot = &self.shards[i as usize];
                slot.write_locks.inc();
                (i, ShardGuard::Write(slot.lock.write()))
            })
            .collect()
    }

    /// Records identifiers that replay allocated and then finally freed
    /// (recovery): each raw id leaves with the allocator raised past it
    /// *and* a free-set entry, exactly as a serial alloc/free pair would
    /// have left its shard. Call order (note, then insert) matters:
    /// `note_*_id` removes the id from the free set before re-adding.
    pub(crate) fn inject_freed(
        &self,
        freed_blocks: impl IntoIterator<Item = u64>,
        freed_lists: impl IntoIterator<Item = u64>,
    ) {
        let n = self.shards.len() as u64;
        let mask = self.mask();
        let mut guards: Vec<RwLockWriteGuard<'_, MapShard>> =
            self.shards.iter().map(|s| s.lock.write()).collect();
        for raw in freed_blocks {
            let sh = &mut *guards[(raw & mask) as usize];
            sh.note_block_id(raw, n);
            sh.free_blocks.insert(raw);
        }
        for raw in freed_lists {
            let sh = &mut *guards[(raw & mask) as usize];
            sh.note_list_id(raw, n);
            sh.free_lists.insert(raw);
        }
    }

    /// Per-shard lock-acquisition counters.
    pub(crate) fn shard_stats(&self) -> Vec<ShardLockStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardLockStats {
                shard: i as u32,
                read_locks: s.read_locks.get(),
                write_locks: s.write_locks.get(),
            })
            .collect()
    }
}

/// A held shard guard: shared for the read path, exclusive for
/// mutation sessions.
#[derive(Debug)]
pub(crate) enum ShardGuard<'a> {
    Read(RwLockReadGuard<'a, MapShard>),
    Write(RwLockWriteGuard<'a, MapShard>),
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = MapShard;
    fn deref(&self) -> &MapShard {
        match self {
            ShardGuard::Read(g) => g,
            ShardGuard::Write(g) => g,
        }
    }
}

/// How a view-level list walk ended.
#[derive(Debug)]
pub(crate) enum WalkOutcome {
    /// The whole list was reachable through the held shards.
    Done { members: Vec<BlockId>, steps: u64 },
    /// The walk reached an identifier whose shard is not held; the
    /// caller escalates (read path) or has a shard-plan bug (mutation).
    NeedShard(u32),
}

/// A set of held mapping-layer locks: some ARU slots and some shards,
/// each sorted ascending. Both the concurrent read path (shared shard
/// guards) and mutation sessions (exclusive guards) query the version
/// states through this one type, so the standardised search
/// (shadow → committed → persistent) is written once.
pub(crate) struct MapView<'a> {
    nshards: u32,
    shards: Vec<(u32, ShardGuard<'a>)>,
    arus: Vec<(u32, MutexGuard<'a, BTreeMap<u64, Aru>>)>,
    /// The commit-validation scratch ARU (id [`SCRATCH_ARU_RAW`]),
    /// resolved ahead of the slot table by [`aru`](Self::aru).
    pub(crate) scratch: Option<Aru>,
}

impl<'a> MapView<'a> {
    pub(crate) fn new(
        nshards: u32,
        arus: Vec<(u32, MutexGuard<'a, BTreeMap<u64, Aru>>)>,
        shards: Vec<(u32, ShardGuard<'a>)>,
    ) -> Self {
        MapView {
            nshards,
            shards,
            arus,
            scratch: None,
        }
    }

    pub(crate) fn shard_of(&self, raw: u64) -> u32 {
        (raw & (u64::from(self.nshards) - 1)) as u32
    }

    pub(crate) fn holds_all_shards_write(&self) -> bool {
        self.shards.len() == self.nshards as usize
            && self
                .shards
                .iter()
                .all(|(_, g)| matches!(g, ShardGuard::Write(_)))
    }

    fn shard_pos(&self, idx: u32) -> Option<usize> {
        self.shards.binary_search_by_key(&idx, |(i, _)| *i).ok()
    }

    pub(crate) fn try_shard(&self, idx: u32) -> Option<&MapShard> {
        self.shard_pos(idx).map(|p| &*self.shards[p].1)
    }

    pub(crate) fn shard(&self, idx: u32) -> &MapShard {
        self.try_shard(idx)
            .unwrap_or_else(|| panic!("session does not hold map shard {idx}"))
    }

    pub(crate) fn shard_mut(&mut self, idx: u32) -> &mut MapShard {
        let p = self
            .shard_pos(idx)
            .unwrap_or_else(|| panic!("session does not hold map shard {idx}"));
        match &mut self.shards[p].1 {
            ShardGuard::Write(g) => g,
            ShardGuard::Read(_) => panic!("session holds map shard {idx} only for reading"),
        }
    }

    pub(crate) fn block_shard_mut(&mut self, id: BlockId) -> &mut MapShard {
        self.shard_mut(self.shard_of(id.get()))
    }

    pub(crate) fn list_shard_mut(&mut self, id: ListId) -> &mut MapShard {
        self.shard_mut(self.shard_of(id.get()))
    }

    // ------------------------------------------------------------------
    // ARU descriptor access
    // ------------------------------------------------------------------

    fn aru_slot(&self, raw: u64) -> &BTreeMap<u64, Aru> {
        let idx = self.shard_of(raw);
        let p = self
            .arus
            .binary_search_by_key(&idx, |(i, _)| *i)
            .unwrap_or_else(|_| panic!("session does not hold ARU slot {idx}"));
        &self.arus[p].1
    }

    fn aru_slot_mut(&mut self, raw: u64) -> &mut BTreeMap<u64, Aru> {
        let idx = self.shard_of(raw);
        let p = self
            .arus
            .binary_search_by_key(&idx, |(i, _)| *i)
            .unwrap_or_else(|_| panic!("session does not hold ARU slot {idx}"));
        &mut self.arus[p].1
    }

    pub(crate) fn aru(&self, raw: u64) -> Option<&Aru> {
        if raw == SCRATCH_ARU_RAW {
            return self.scratch.as_ref();
        }
        self.aru_slot(raw).get(&raw)
    }

    pub(crate) fn aru_mut(&mut self, raw: u64) -> Option<&mut Aru> {
        if raw == SCRATCH_ARU_RAW {
            return self.scratch.as_mut();
        }
        self.aru_slot_mut(raw).get_mut(&raw)
    }

    pub(crate) fn aru_contains(&self, raw: u64) -> bool {
        self.aru(raw).is_some()
    }

    pub(crate) fn aru_remove(&mut self, raw: u64) -> Option<Aru> {
        if raw == SCRATCH_ARU_RAW {
            return self.scratch.take();
        }
        self.aru_slot_mut(raw).remove(&raw)
    }

    /// Iterates the ARUs in every *held* slot (callers that need all
    /// ARUs hold every slot).
    pub(crate) fn arus_held(&self) -> impl Iterator<Item = &Aru> {
        self.arus.iter().flat_map(|(_, m)| m.values())
    }

    pub(crate) fn held_aru_count(&self) -> usize {
        self.arus.iter().map(|(_, m)| m.len()).sum()
    }

    // ------------------------------------------------------------------
    // Version-state access (the standardised search)
    // ------------------------------------------------------------------

    /// Committed view through shards that may not all be held: `Err`
    /// carries the missing shard index.
    fn try_committed_view_block(
        &self,
        id: BlockId,
    ) -> std::result::Result<Option<&BlockRecord>, u32> {
        let idx = self.shard_of(id.get());
        let sh = self.try_shard(idx).ok_or(idx)?;
        Ok(sh
            .committed
            .blocks
            .get(&id)
            .or_else(|| sh.persistent.blocks.get(&id)))
    }

    fn try_committed_view_list(&self, id: ListId) -> std::result::Result<Option<&ListRecord>, u32> {
        let idx = self.shard_of(id.get());
        let sh = self.try_shard(idx).ok_or(idx)?;
        Ok(sh
            .committed
            .lists
            .get(&id)
            .or_else(|| sh.persistent.lists.get(&id)))
    }

    fn try_view_block(
        &self,
        st: StateRef,
        id: BlockId,
    ) -> std::result::Result<Option<&BlockRecord>, u32> {
        if let StateRef::Shadow(aru) = st {
            if let Some(rec) = self.aru(aru.get()).and_then(|a| a.shadow.blocks.get(&id)) {
                return Ok(Some(rec));
            }
        }
        self.try_committed_view_block(id)
    }

    fn try_view_list(
        &self,
        st: StateRef,
        id: ListId,
    ) -> std::result::Result<Option<&ListRecord>, u32> {
        if let StateRef::Shadow(aru) = st {
            if let Some(rec) = self.aru(aru.get()).and_then(|a| a.shadow.lists.get(&id)) {
                return Ok(Some(rec));
            }
        }
        self.try_committed_view_list(id)
    }

    /// The committed view of a block: committed overlay, falling through
    /// to the persistent table. May return a deallocated record.
    ///
    /// # Panics
    ///
    /// Panics if the block's shard is not held — mutation shard plans
    /// cover every identifier they touch, and the read path uses
    /// [`walk_list`](Self::walk_list) (which escalates) instead.
    pub(crate) fn committed_view_block(&self, id: BlockId) -> Option<&BlockRecord> {
        let sh = self.shard(self.shard_of(id.get()));
        sh.committed
            .blocks
            .get(&id)
            .or_else(|| sh.persistent.blocks.get(&id))
    }

    pub(crate) fn committed_view_list(&self, id: ListId) -> Option<&ListRecord> {
        let sh = self.shard(self.shard_of(id.get()));
        sh.committed
            .lists
            .get(&id)
            .or_else(|| sh.persistent.lists.get(&id))
    }

    /// Resolves a block record in the given state (shadow → committed →
    /// persistent). May return a deallocated record.
    pub(crate) fn view_block(&self, st: StateRef, id: BlockId) -> Option<&BlockRecord> {
        if let StateRef::Shadow(aru) = st {
            if let Some(rec) = self.aru(aru.get()).and_then(|a| a.shadow.blocks.get(&id)) {
                return Some(rec);
            }
        }
        self.committed_view_block(id)
    }

    pub(crate) fn view_list(&self, st: StateRef, id: ListId) -> Option<&ListRecord> {
        if let StateRef::Shadow(aru) = st {
            if let Some(rec) = self.aru(aru.get()).and_then(|a| a.shadow.lists.get(&id)) {
                return Some(rec);
            }
        }
        self.committed_view_list(id)
    }

    /// Walks `list` in state `st` through the held shards, returning
    /// the member blocks in order plus the number of steps taken, or
    /// the shard index the walk would need next.
    ///
    /// # Errors
    ///
    /// [`LldError::ListNotAllocated`] if the list does not exist in the
    /// state; [`LldError::Corrupt`] on a cycle or dangling successor.
    pub(crate) fn walk_list(
        &self,
        st: StateRef,
        list: ListId,
        max_blocks: u64,
    ) -> Result<WalkOutcome> {
        let rec = match self.try_view_list(st, list) {
            Err(s) => return Ok(WalkOutcome::NeedShard(s)),
            Ok(r) => r
                .filter(|r| r.allocated)
                .ok_or(LldError::ListNotAllocated(list))?,
        };
        let mut out = Vec::new();
        let mut cur = rec.first;
        let bound = max_blocks + 1;
        let mut steps = 0u64;
        while let Some(b) = cur {
            steps += 1;
            if steps > bound {
                return Err(LldError::Corrupt(format!("cycle while walking {list}")));
            }
            let brec = match self.try_view_block(st, b) {
                Err(s) => return Ok(WalkOutcome::NeedShard(s)),
                Ok(r) => r.filter(|r| r.allocated).ok_or_else(|| {
                    LldError::Corrupt(format!("list {list} references missing block {b}"))
                })?,
            };
            out.push(b);
            cur = brec.successor;
        }
        Ok(WalkOutcome::Done {
            members: out,
            steps,
        })
    }

    /// Validates that an insertion of a block into `list` at `pos` is
    /// possible in state `st` (list allocated; predecessor allocated and
    /// on the list).
    pub(crate) fn validate_insert(&self, st: StateRef, list: ListId, pos: Position) -> Result<()> {
        self.view_list(st, list)
            .filter(|r| r.allocated)
            .ok_or(LldError::ListNotAllocated(list))?;
        if let Position::After(pred) = pos {
            let p = self
                .view_block(st, pred)
                .filter(|r| r.allocated)
                .ok_or(LldError::BlockNotAllocated(pred))?;
            if p.list != Some(list) {
                return Err(LldError::PredecessorNotOnList { list, pred });
            }
        }
        Ok(())
    }

    /// Iterates every held shard (full sessions hold all of them).
    pub(crate) fn shards_held(&self) -> impl Iterator<Item = &MapShard> {
        self.shards.iter().map(|(_, g)| &**g)
    }

    /// Drains the committed overlay of every held (write-locked) shard
    /// into its persistent tables, returning the number of records
    /// drained. Scoped sessions drain only their own shards; the full
    /// drain happens under full sessions (checkpoint, recovery).
    pub(crate) fn drain_committed(&mut self) -> u64 {
        let mut n = 0u64;
        for (_, g) in &mut self.shards {
            if let ShardGuard::Write(sh) = g {
                n += sh.committed.len() as u64;
                let sh = &mut **sh;
                // Copy-on-advance: an incremental checkpoint has chosen
                // its covered point but not yet snapshotted this shard —
                // preserve the persistent tables as of that point before
                // draining newer committed records into them.
                if sh.snap_pending && !sh.committed.is_empty() && sh.snap_copy.is_none() {
                    sh.snap_copy = Some(sh.persistent.clone());
                }
                sh.committed.drain_into(&mut sh.persistent);
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_ceil_respects_congruence_and_floor() {
        for n in [1u64, 2, 4, 8, 64] {
            for idx in 0..n as u32 {
                for floor in [0u64, 1, 2, 7, 8, 9, 100] {
                    let v = striped_ceil(floor, idx, n);
                    assert_eq!(v % n, u64::from(idx) % n, "n={n} idx={idx} floor={floor}");
                    assert!(v >= floor.max(1), "n={n} idx={idx} floor={floor} v={v}");
                    assert!(v < floor.max(1) + n);
                    assert_ne!(v, 0);
                }
            }
        }
    }

    #[test]
    fn fresh_shards_stripe_the_id_space() {
        let maps = Maps::fresh(4);
        let mut seen = BTreeSet::new();
        let mut guards = maps.lock_write(maps.all_set());
        for (i, g) in &mut guards {
            let sh = match g {
                ShardGuard::Write(g) => &mut **g,
                ShardGuard::Read(_) => unreachable!(),
            };
            for _ in 0..3 {
                let raw = sh.alloc_block_raw(4);
                assert_eq!(raw % 4, u64::from(*i) % 4);
                assert_ne!(raw, 0);
                assert!(seen.insert(raw), "duplicate id {raw}");
            }
        }
    }

    #[test]
    fn from_tables_distributes_and_raises_allocators() {
        let mut tables = Tables::default();
        for raw in [1u64, 5, 9, 14] {
            tables.blocks.insert(
                BlockId::new(raw),
                BlockRecord::fresh(crate::types::Timestamp::ZERO),
            );
        }
        let maps = Maps::from_tables(4, tables, 10, 1);
        assert_eq!(maps.allocated_blocks.load(Ordering::Relaxed), 4);
        let guards = maps.lock_read(maps.all_set());
        for (i, g) in &guards {
            let sh: &MapShard = g;
            // Allocator is past the floor and past every present id.
            assert!(sh.next_block_raw >= 10);
            assert_eq!(sh.next_block_raw % 4, u64::from(*i));
            for id in sh.persistent.blocks.keys() {
                assert_eq!(maps.shard_of(id.get()), *i);
                assert!(sh.next_block_raw > id.get());
            }
        }
        // 1, 5, 9 land in shard 1; 14 in shard 2.
        assert_eq!(guards[1].1.persistent.blocks.len(), 3);
        assert_eq!(guards[2].1.persistent.blocks.len(), 1);
    }

    #[test]
    fn reserve_respects_limit() {
        let maps = Maps::fresh(2);
        assert!(maps.try_reserve_block(2).is_ok());
        assert!(maps.try_reserve_block(2).is_ok());
        assert!(matches!(maps.try_reserve_block(2), Err(LldError::DiskFull)));
        maps.unreserve_block();
        assert!(maps.try_reserve_block(2).is_ok());
    }
}
