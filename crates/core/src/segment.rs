//! In-memory segment construction and on-disk segment encoding.
//!
//! A segment is filled in main memory and written to disk in a single
//! device write (§2 of the paper). Its first block is a header; data
//! blocks follow; the segment summary (encoded [`Record`]s) sits after
//! the last data block:
//!
//! ```text
//! +--------+---------+---------+-----+----------------+
//! | header | data[0] | data[1] | ... | summary records|
//! +--------+---------+---------+-----+----------------+
//! ```
//!
//! The header carries the segment's log sequence number and a CRC over
//! the summary, so recovery can (a) order segments into a single log and
//! (b) detect a torn segment write and treat the segment as never
//! written.

use crate::error::{LldError, Result};
use crate::layout::Layout;
use crate::summary::Record;
use crate::types::SegmentId;
use ld_disk::{crc32, BlockDevice};

const SEGMENT_MAGIC: u64 = 0x4C44_5345_4739_3936; // "LDSEG996"
pub(crate) const HEADER_LEN: usize = 32;

/// A segment being filled in memory.
#[derive(Debug)]
pub(crate) struct SegmentBuilder {
    slot: SegmentId,
    seq: u64,
    block_size: usize,
    capacity: usize,
    data: Vec<u8>,
    summary: Vec<u8>,
    n_records: usize,
}

impl SegmentBuilder {
    /// Starts an empty segment in physical slot `slot` with log sequence
    /// number `seq`.
    pub(crate) fn new(slot: SegmentId, seq: u64, block_size: usize, capacity: usize) -> Self {
        SegmentBuilder {
            slot,
            seq,
            block_size,
            capacity,
            data: Vec::new(),
            summary: Vec::new(),
            n_records: 0,
        }
    }

    pub(crate) fn slot(&self) -> SegmentId {
        self.slot
    }

    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }

    pub(crate) fn n_blocks(&self) -> u32 {
        (self.data.len() / self.block_size) as u32
    }

    #[allow(dead_code)] // used by diagnostics/tests
    pub(crate) fn n_records(&self) -> usize {
        self.n_records
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.data.is_empty() && self.summary.is_empty()
    }

    /// Whether `extra_blocks` data blocks plus `extra_summary` summary
    /// bytes still fit.
    pub(crate) fn fits(&self, extra_blocks: usize, extra_summary: usize) -> bool {
        let used = self.block_size // header block
            + self.data.len()
            + extra_blocks * self.block_size
            + self.summary.len()
            + extra_summary;
        used <= self.capacity
    }

    /// Appends one data block and returns its slot index.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one block or the block does not
    /// fit; callers check [`fits`](Self::fits) first.
    pub(crate) fn push_block(&mut self, data: &[u8]) -> u32 {
        assert_eq!(data.len(), self.block_size, "data must be one block");
        assert!(self.fits(1, 0), "segment overflow");
        let idx = self.n_blocks();
        self.data.extend_from_slice(data);
        idx
    }

    /// Appends one summary record.
    ///
    /// # Panics
    ///
    /// Panics if the record does not fit; callers check
    /// [`fits`](Self::fits) first.
    pub(crate) fn push_record(&mut self, rec: &Record) {
        assert!(self.fits(0, rec.encoded_len()), "summary overflow");
        rec.encode(&mut self.summary);
        self.n_records += 1;
    }

    /// Reads back a data block already placed in this (unsealed)
    /// segment.
    pub(crate) fn read_block(&self, slot: u32) -> &[u8] {
        let start = slot as usize * self.block_size;
        &self.data[start..start + self.block_size]
    }

    /// Encodes the 32-byte sealed-segment header alone. A slot holds a
    /// valid segment exactly when these bytes (with their CRC) are on
    /// disk, which is what lets a streaming writer place data blocks
    /// and summary first and commit the segment with the header *last*.
    pub(crate) fn header_bytes(&self) -> [u8; HEADER_LEN] {
        let n_blocks = self.n_blocks();
        let summary_crc = crc32(&self.summary);
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
        header.extend_from_slice(&self.seq.to_le_bytes());
        header.extend_from_slice(&n_blocks.to_le_bytes());
        header.extend_from_slice(&(self.summary.len() as u32).to_le_bytes());
        header.extend_from_slice(&summary_crc.to_le_bytes());
        let header_crc = crc32(&header);
        header.extend_from_slice(&header_crc.to_le_bytes());
        header.try_into().expect("header is HEADER_LEN bytes")
    }

    /// The encoded summary records accumulated so far. On disk they sit
    /// immediately after the last data block.
    pub(crate) fn summary_bytes(&self) -> &[u8] {
        &self.summary
    }

    /// Total on-media size of the sealed segment: header block + data
    /// blocks + summary.
    pub(crate) fn encoded_len(&self) -> usize {
        self.block_size + self.data.len() + self.summary.len()
    }

    /// Encodes the segment for a single device write. Returns the bytes
    /// to write at the segment's offset.
    pub(crate) fn seal(&self) -> Vec<u8> {
        let header = self.header_bytes();
        let mut buf = vec![0u8; self.encoded_len()];
        buf[..HEADER_LEN].copy_from_slice(&header);
        buf[self.block_size..self.block_size + self.data.len()].copy_from_slice(&self.data);
        buf[self.block_size + self.data.len()..].copy_from_slice(&self.summary);
        buf
    }
}

/// A sealed segment's metadata as read back from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentInfo {
    pub(crate) slot: SegmentId,
    pub(crate) seq: u64,
    pub(crate) n_blocks: u32,
    pub(crate) records: Vec<Record>,
}

/// The outcome of probing one physical slot during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SegmentScan {
    /// No sealed segment: the header never landed or is stale garbage.
    None,
    /// The header is intact but the summary fails its checksum — a
    /// segment write torn by a crash. Treated as never written, but
    /// counted separately so recovery can report it.
    Torn,
    /// A valid sealed segment.
    Valid(SegmentInfo),
}

/// Probes the segment in physical slot `slot`, distinguishing a torn
/// segment write (valid header, bad summary) from an empty or stale
/// slot.
pub(crate) fn scan_segment<D: BlockDevice>(
    device: &D,
    layout: &Layout,
    slot: SegmentId,
) -> Result<SegmentScan> {
    scan_segment_above(device, layout, slot, 0)
}

/// Like [`scan_segment`], but skips reading and parsing the summary of
/// a segment whose sequence number is at or below `summary_floor`,
/// returning it with an empty record list.
///
/// Recovery passes the checkpoint sequence number here: a sealed
/// segment the checkpoint covers was durable before the checkpoint
/// committed (commit happens after every covered segment sealed), so
/// it cannot be a torn tail of the crash, and its records are already
/// reflected in the snapshot. Only its occupancy — slot and sequence
/// number, both in the CRC-guarded header — matters for rebuilding the
/// log state, which keeps restart's scan cost proportional to the
/// suffix rather than the whole log.
pub(crate) fn scan_segment_above<D: BlockDevice>(
    device: &D,
    layout: &Layout,
    slot: SegmentId,
    summary_floor: u64,
) -> Result<SegmentScan> {
    let off = layout.segment_offset(slot.get());
    let mut header = [0u8; HEADER_LEN];
    device.read_at(off, &mut header)?;
    let stored_crc = u32::from_le_bytes(header[HEADER_LEN - 4..].try_into().expect("4 bytes"));
    if crc32(&header[..HEADER_LEN - 4]) != stored_crc {
        return Ok(SegmentScan::None);
    }
    let magic = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
    if magic != SEGMENT_MAGIC {
        return Ok(SegmentScan::None);
    }
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let n_blocks = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
    let summary_len = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes")) as usize;
    let summary_crc = u32::from_le_bytes(header[24..28].try_into().expect("4 bytes"));

    if seq <= summary_floor {
        return Ok(SegmentScan::Valid(SegmentInfo {
            slot,
            seq,
            n_blocks,
            records: Vec::new(),
        }));
    }

    let data_bytes = (1 + n_blocks as usize) * layout.block_size;
    if data_bytes + summary_len > layout.segment_bytes {
        return Ok(SegmentScan::Torn);
    }
    let mut summary = vec![0u8; summary_len];
    device.read_at(off + data_bytes as u64, &mut summary)?;
    if crc32(&summary) != summary_crc {
        return Ok(SegmentScan::Torn);
    }
    let records = Record::decode_all(&summary).map_err(|e| match e {
        LldError::Corrupt(msg) => LldError::Corrupt(format!("segment {slot} seq {seq}: {msg}")),
        other => other,
    })?;
    Ok(SegmentScan::Valid(SegmentInfo {
        slot,
        seq,
        n_blocks,
        records,
    }))
}

/// Reads and validates the segment in physical slot `slot`.
///
/// Returns `Ok(None)` for a slot that does not hold a valid sealed
/// segment: never written, stale garbage, or a torn write (header or
/// summary checksum mismatch). Recovery treats all three identically —
/// the segment does not exist (see [`scan_segment`] for the variant
/// that reports torn writes separately).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn read_segment<D: BlockDevice>(
    device: &D,
    layout: &Layout,
    slot: SegmentId,
) -> Result<Option<SegmentInfo>> {
    Ok(match scan_segment(device, layout, slot)? {
        SegmentScan::Valid(info) => Some(info),
        SegmentScan::None | SegmentScan::Torn => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LldConfig;
    use crate::types::{BlockId, Timestamp};
    use ld_disk::MemDisk;

    fn layout() -> Layout {
        let cfg = LldConfig {
            block_size: 512,
            segment_bytes: 8 * 512,
            max_blocks: Some(64),
            max_lists: Some(16),
            ..LldConfig::default()
        };
        Layout::compute(1 << 20, &cfg).unwrap()
    }

    fn sample_record(n: u64) -> Record {
        Record::NewBlock {
            block: BlockId::new(n),
            ts: Timestamp::new(n),
        }
    }

    #[test]
    fn builder_tracks_capacity() {
        let b = SegmentBuilder::new(SegmentId::new(0), 1, 512, 8 * 512);
        assert!(b.is_empty());
        // Header takes one block, so 7 data blocks fit with no summary.
        assert!(b.fits(7, 0));
        assert!(!b.fits(7, 1));
        assert!(!b.fits(8, 0));
    }

    #[test]
    fn push_and_read_back() {
        let mut b = SegmentBuilder::new(SegmentId::new(2), 9, 512, 8 * 512);
        let block = vec![0xABu8; 512];
        let idx = b.push_block(&block);
        assert_eq!(idx, 0);
        assert_eq!(b.push_block(&vec![0xCDu8; 512]), 1);
        assert_eq!(b.read_block(0), &block[..]);
        assert_eq!(b.read_block(1)[0], 0xCD);
        b.push_record(&sample_record(1));
        assert_eq!(b.n_blocks(), 2);
        assert_eq!(b.n_records(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn seal_and_read_round_trip() {
        let layout = layout();
        let device = MemDisk::new(1 << 20);
        let mut b = SegmentBuilder::new(SegmentId::new(1), 42, 512, 8 * 512);
        b.push_block(&vec![7u8; 512]);
        b.push_record(&sample_record(1));
        b.push_record(&sample_record(2));
        let bytes = b.seal();
        device.write_at(layout.segment_offset(1), &bytes).unwrap();

        let info = read_segment(&device, &layout, SegmentId::new(1))
            .unwrap()
            .expect("valid segment");
        assert_eq!(info.seq, 42);
        assert_eq!(info.n_blocks, 1);
        assert_eq!(info.records, vec![sample_record(1), sample_record(2)]);

        // Unwritten slots read as "no segment".
        assert_eq!(
            read_segment(&device, &layout, SegmentId::new(2)).unwrap(),
            None
        );
    }

    #[test]
    fn torn_summary_is_rejected() {
        let layout = layout();
        let device = MemDisk::new(1 << 20);
        let mut b = SegmentBuilder::new(SegmentId::new(0), 7, 512, 8 * 512);
        b.push_block(&vec![1u8; 512]);
        b.push_record(&sample_record(1));
        let bytes = b.seal();
        // Simulate a torn write: the tail of the summary never lands and
        // the medium holds stale bytes there instead.
        device
            .write_at(layout.segment_offset(0), &vec![0xEEu8; 8 * 512])
            .unwrap();
        device
            .write_at(layout.segment_offset(0), &bytes[..bytes.len() - 9])
            .unwrap();
        assert_eq!(
            read_segment(&device, &layout, SegmentId::new(0)).unwrap(),
            None
        );
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let layout = layout();
        let device = MemDisk::new(1 << 20);
        let b = SegmentBuilder::new(SegmentId::new(0), 7, 512, 8 * 512);
        let mut bytes = b.seal();
        bytes[9] ^= 0x10; // flip a bit in seq
        device.write_at(layout.segment_offset(0), &bytes).unwrap();
        assert_eq!(
            read_segment(&device, &layout, SegmentId::new(0)).unwrap(),
            None
        );
    }

    #[test]
    fn streamed_writes_equal_single_seal_write() {
        // The pipelined path streams data blocks first, then the
        // summary, then the header last — in separate writes. The
        // resulting image must scan identically to the single-write
        // seal, and every prefix of that write order must scan as "no
        // segment" (all-or-nothing without a big atomic write).
        let layout = layout();
        let mut b = SegmentBuilder::new(SegmentId::new(1), 42, 512, 8 * 512);
        b.push_block(&vec![7u8; 512]);
        b.push_block(&vec![9u8; 512]);
        b.push_record(&sample_record(1));
        let off = layout.segment_offset(1);

        let streamed = MemDisk::new(1 << 20);
        let id = SegmentId::new(1);
        // Prefix 0: nothing written yet.
        assert_eq!(read_segment(&streamed, &layout, id).unwrap(), None);
        for (i, block) in [&b.data[..512], &b.data[512..]].into_iter().enumerate() {
            streamed
                .write_at(off + (1 + i as u64) * 512, block)
                .unwrap();
            assert_eq!(read_segment(&streamed, &layout, id).unwrap(), None);
        }
        streamed.write_at(off + 3 * 512, b.summary_bytes()).unwrap();
        assert_eq!(read_segment(&streamed, &layout, id).unwrap(), None);
        streamed.write_at(off, &b.header_bytes()).unwrap();

        let single = MemDisk::new(1 << 20);
        single.write_at(off, &b.seal()).unwrap();
        assert_eq!(
            read_segment(&streamed, &layout, id).unwrap(),
            read_segment(&single, &layout, id).unwrap()
        );
        assert!(read_segment(&streamed, &layout, id).unwrap().is_some());
    }

    #[test]
    fn punched_header_kills_a_stale_segment() {
        // Reusing a slot for streaming: the old sealed segment's header
        // must be invalidated before new data lands, or a crash
        // mid-stream would resurrect the old segment over new bytes.
        let layout = layout();
        let device = MemDisk::new(1 << 20);
        let mut old = SegmentBuilder::new(SegmentId::new(0), 3, 512, 8 * 512);
        old.push_block(&vec![1u8; 512]);
        old.push_record(&sample_record(1));
        let off = layout.segment_offset(0);
        device.write_at(off, &old.seal()).unwrap();
        assert!(read_segment(&device, &layout, SegmentId::new(0))
            .unwrap()
            .is_some());
        // Punch, then stream one new data block and crash.
        device.write_at(off, &[0u8; HEADER_LEN]).unwrap();
        device.write_at(off + 512, &vec![0xFFu8; 512]).unwrap();
        assert_eq!(
            read_segment(&device, &layout, SegmentId::new(0)).unwrap(),
            None,
            "stale header must not validate over mixed data"
        );
    }

    #[test]
    fn data_block_offsets_match_layout() {
        // Block slot i of the builder must land where
        // Layout::block_offset says it is.
        let layout = layout();
        let device = MemDisk::new(1 << 20);
        let mut b = SegmentBuilder::new(SegmentId::new(3), 1, 512, 8 * 512);
        b.push_block(&vec![0x11u8; 512]);
        b.push_block(&vec![0x22u8; 512]);
        device
            .write_at(layout.segment_offset(3), &b.seal())
            .unwrap();
        let addr = crate::types::PhysAddr {
            segment: SegmentId::new(3),
            slot: 1,
        };
        let mut buf = [0u8; 512];
        device.read_at(layout.block_offset(addr), &mut buf).unwrap();
        assert_eq!(buf[0], 0x22);
    }
}
