//! The disk consistency check that reclaims orphaned allocations.
//!
//! Blocks are always allocated in the committed state, even inside an
//! ARU; if the ARU never commits, the allocation survives recovery while
//! the insertion into a list does not. The paper: "a disk consistency
//! check during recovery should free such blocks (which adds very little
//! overhead to a log-based recovery procedure)".

use crate::error::{LldError, Result};
use crate::lld::LldInner;
use crate::types::{BlockId, Ctx};
use ld_disk::BlockDevice;
use std::collections::HashSet;

/// What the consistency check found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Allocated blocks that belonged to no list and were freed.
    pub orphan_blocks_freed: Vec<BlockId>,
}

impl<D: BlockDevice> LldInner<D> {
    /// Frees every allocated block that belongs to no list.
    ///
    /// Run automatically at the end of [`recover`](crate::Lld::recover) (unless
    /// disabled in the configuration); it may also be run manually on a
    /// quiescent disk — the orphan scan and the deletions are not one
    /// atomic step, so concurrent mutators could allocate blocks the
    /// check then frees.
    ///
    /// # Errors
    ///
    /// Returns [`LldError::ArusActive`] if any ARU is active: an active
    /// ARU legitimately owns allocated-but-unlinked blocks, and freeing
    /// them would corrupt its commit.
    pub fn check(&self) -> Result<CheckReport> {
        let orphans = {
            let all = self.maps.all_set();
            let view = self.read_view(all, all);
            let active = view.held_aru_count();
            if active > 0 {
                return Err(LldError::ArusActive { count: active });
            }
            let ids: HashSet<BlockId> = view
                .shards_held()
                .flat_map(|s| {
                    s.persistent
                        .blocks
                        .keys()
                        .chain(s.committed.blocks.keys())
                        .copied()
                })
                .collect();
            let mut orphans: Vec<BlockId> = ids
                .into_iter()
                .filter(|&id| {
                    view.committed_view_block(id)
                        .map(|r| r.allocated && r.list.is_none())
                        .unwrap_or(false)
                })
                .collect();
            orphans.sort_unstable();
            orphans
        };
        for &b in &orphans {
            self.delete_block(Ctx::Simple, b)?;
        }
        Ok(CheckReport {
            orphan_blocks_freed: orphans,
        })
    }
}
