//! The disk consistency check that reclaims orphaned allocations.
//!
//! Blocks are always allocated in the committed state, even inside an
//! ARU; if the ARU never commits, the allocation survives recovery while
//! the insertion into a list does not. The paper: "a disk consistency
//! check during recovery should free such blocks (which adds very little
//! overhead to a log-based recovery procedure)".

use crate::error::{LldError, Result};
use crate::lld::Lld;
use crate::types::{BlockId, Ctx};
use ld_disk::BlockDevice;
use std::collections::HashSet;

/// What the consistency check found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Allocated blocks that belonged to no list and were freed.
    pub orphan_blocks_freed: Vec<BlockId>,
}

impl<D: BlockDevice> Lld<D> {
    /// Frees every allocated block that belongs to no list.
    ///
    /// Run automatically at the end of [`recover`](Lld::recover) (unless
    /// disabled in the configuration); it may also be run manually on a
    /// quiescent disk.
    ///
    /// # Errors
    ///
    /// Returns [`LldError::ArusActive`] if any ARU is active: an active
    /// ARU legitimately owns allocated-but-unlinked blocks, and freeing
    /// them would corrupt its commit.
    pub fn check(&mut self) -> Result<CheckReport> {
        if !self.arus.is_empty() {
            return Err(LldError::ArusActive {
                count: self.arus.len(),
            });
        }
        let ids: HashSet<BlockId> = self
            .persistent
            .blocks
            .keys()
            .chain(self.committed.blocks.keys())
            .copied()
            .collect();
        let mut orphans: Vec<BlockId> = ids
            .into_iter()
            .filter(|&id| {
                self.committed_view_block(id)
                    .map(|r| r.allocated && r.list.is_none())
                    .unwrap_or(false)
            })
            .collect();
        orphans.sort_unstable();
        for &b in &orphans {
            self.delete_block(Ctx::Simple, b)?;
        }
        Ok(CheckReport {
            orphan_blocks_freed: orphans,
        })
    }
}
