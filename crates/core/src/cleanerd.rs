//! The background cleaner thread ("cleanerd").
//!
//! The inline cleaner (see `cleaner.rs`) runs inside a *full* mutation
//! session — every shard write-locked — so cleaning stalls all ARU
//! traffic for the whole pass. `cleanerd` moves that work to a
//! dedicated thread that:
//!
//! 1. **snapshots** victim candidates and their live-block sets under
//!    the log mutex alone (and prefilters the sets under shard *read*
//!    locks),
//! 2. **prefetches** every victim block's data from the device with no
//!    lock held at all — a sealed victim's bytes are immutable until
//!    its slot is freed, and a slot freed-and-reused mid-read is caught
//!    by the re-validation below, so slow media reads never extend any
//!    lock hold time,
//! 3. **relocates** the prefetched blocks in short *scoped* write-lock
//!    windows, re-validating each block's mapping at relocation time
//!    and skipping blocks mutated since the snapshot,
//! 4. writes the **covering checkpoint** itself — *incrementally*
//!    (`checkpoint_incremental`): the covered point is pinned in one
//!    short full session, then each shard's snapshot slab is encoded
//!    under only that shard's write lock and written with no
//!    mapping-layer locks held — and only then
//! 5. **releases** victim slots (after re-validating, under a full
//!    session, that each slot is sealed, covered, and empty of live
//!    blocks).
//!
//! Foreground operations in disjoint shards keep committing while
//! phases 1–4 run; no phase of a background pass dumps the whole map
//! under a stop-the-world session anymore (the release sweep's full
//! session only walks per-slot counters).
//!
//! Lifecycle is watermark-driven: segment rolls kick the thread when
//! free segments drop below the *low watermark*
//! (`cleaner.target_free_segments`), and space-consuming foreground
//! operations briefly stall at the *high watermark*
//! (`cleaner.backpressure_free_segments`) to let the thread catch up.
//! The inline full-session cleaner remains the emergency fallback: a
//! full session under `min_free_segments` still cleans inline, and a
//! scoped roll that cannot kick a healthy cleanerd sets the
//! `needs_clean` flag as before.
//!
//! Lock order (see docs/CLEANER.md for the full proof): the
//! coordination state below is a leaf lock, never held while acquiring
//! any mapping-layer or log lock, and the pass itself only ever uses
//! the ordinary session types, so cleanerd obeys the canonical
//! ARU-slots → shards → log hierarchy by construction.

use crate::error::Result;
use crate::lld::{Lld, LldInner};
use crate::obs::{cleaner_trace, Obs, Stage};
use crate::types::{BlockId, PhysAddr, SegmentId};
use ld_disk::{BlockDevice, Condvar, Mutex};
use std::sync::atomic::Ordering;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the thread sleeps between watermark polls when nobody
/// kicks it (also the retry cadence after a futile pass).
const POLL: Duration = Duration::from_millis(100);

/// Upper bound on one foreground stall at the backpressure gate.
const STALL_MAX: Duration = Duration::from_millis(50);

/// Most victims one pass will snapshot (bounds the memory and the
/// relocation work of a single pass; further victims wait for the next
/// pass).
const MAX_VICTIMS_PER_PASS: usize = 64;

/// Live blocks relocated per scoped write window: small enough that a
/// window never holds its shard locks for long, large enough to
/// amortize the session setup.
const RELOC_BATCH: usize = 16;

/// Coordination state of the background cleaner thread. A leaf lock:
/// never held while acquiring any mapping-layer or log lock.
#[derive(Debug, Default)]
pub(crate) struct Cleanerd {
    state: Mutex<CleanerdState>,
    /// Foreground → cleanerd: free segments fell below a watermark.
    wake: Condvar,
    /// Cleanerd → foreground: a pass freed slots (or the thread died);
    /// backpressure stalls re-check their predicate.
    eased: Condvar,
}

#[derive(Debug, Default)]
struct CleanerdState {
    /// The thread is alive and accepting kicks.
    running: bool,
    /// Shutdown requested; the thread exits at the next loop head.
    stop: bool,
    /// Pending wake-ups (coalesced; cleared when the thread starts a
    /// round).
    kicks: u64,
    /// The last pass freed nothing: the disk is genuinely near-full of
    /// live data, so kicks and stalls are pointless until the periodic
    /// poll observes progress again. The inline fallback takes over.
    futile: bool,
    handle: Option<JoinHandle<()>>,
}

impl Cleanerd {
    pub(crate) fn new() -> Self {
        Cleanerd::default()
    }

    /// Wakes the cleaner thread. Returns `false` when there is no
    /// healthy thread to wake (not running, stopping, or known-futile),
    /// in which case the caller falls back to inline cleaning.
    pub(crate) fn kick(&self) -> bool {
        let mut st = self.state.lock();
        if !st.running || st.stop || st.futile {
            return false;
        }
        st.kicks += 1;
        self.wake.notify_one();
        true
    }

    /// Requests shutdown and joins the thread. Idempotent; called from
    /// `Lld::into_device` and `Drop for Lld`.
    pub(crate) fn shutdown_and_join(&self) {
        let handle = {
            let mut st = self.state.lock();
            st.stop = true;
            self.wake.notify_all();
            self.eased.notify_all();
            st.handle.take()
        };
        if let Some(h) = handle {
            // A panic on the cleaner thread has already poisoned the
            // state it held; surfacing it here would only mask the
            // original panic location.
            let _ = h.join();
        }
    }
}

/// Starts the cleaner thread when the configuration asks for one.
pub(crate) fn spawn_if_configured<D: BlockDevice + 'static>(ld: &Lld<D>) {
    if !ld.cleaner_cfg.enabled || !ld.cleaner_cfg.background {
        return;
    }
    // Mark running before the spawn so a kick arriving between the two
    // is accepted rather than falling back to inline cleaning.
    ld.cleanerd.state.lock().running = true;
    let inner = ld.arc_inner();
    let handle = std::thread::Builder::new()
        .name("ld-cleanerd".into())
        .spawn(move || cleanerd_main(&inner))
        .expect("spawning the cleanerd thread failed");
    ld.cleanerd.state.lock().handle = Some(handle);
}

/// One victim chosen by the snapshot phase.
struct Victim {
    slot: u32,
    /// Log sequence number the slot held at snapshot time; relocation
    /// windows and the release re-verify it, so a victim freed and
    /// reused by the inline cleaner in the meantime is simply dropped.
    seq: u64,
    /// Resident blocks at snapshot time (prefiltered under shard read
    /// locks to those still mapped into this victim), with their data
    /// prefetched lock-free before the write windows.
    blocks: Vec<(BlockId, PhysAddr, Vec<u8>)>,
    /// The victim changed under us (re-sealed or freed); skip it.
    lost: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct PassOutcome {
    freed: u32,
    relocated: u64,
    stale: u64,
}

/// Unwind guard for the cleaner thread: a panic anywhere in a pass
/// leaves poisoned locks behind that take the next foreground session
/// down with no record of what the cleaner was doing — so dump a
/// flight file on the way out. The dump itself runs under
/// `catch_unwind` (it may hit the very locks the panic poisoned) so a
/// failed dump can never escalate an unwinding thread into an abort.
struct PanicFlight<'a, D: BlockDevice>(&'a LldInner<D>);

impl<D: BlockDevice> Drop for PanicFlight<'_, D> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let ld = self.0;
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                ld.flight_dump("cleaner_panic", "panic on the cleaner thread");
            }));
        }
    }
}

fn cleanerd_main<D: BlockDevice + 'static>(ld: &LldInner<D>) {
    ld_disk::register_thread_name("ld-cleanerd");
    let _panic_guard = PanicFlight(ld);
    let low_watermark = u64::from(ld.cleaner_cfg.target_free_segments);
    let mut st = ld.cleanerd.state.lock();
    loop {
        if st.stop {
            break;
        }
        if st.kicks == 0 {
            let (g, _timed_out) = ld.cleanerd.wake.wait_timeout(st, POLL);
            st = g;
            if st.stop {
                break;
            }
        }
        st.kicks = 0;
        drop(st);

        let mut attempted = false;
        let mut freed_any = false;
        while ld.free_slots_hint.load(Ordering::Relaxed) < low_watermark {
            if ld.cleanerd.state.lock().stop {
                break;
            }
            if !attempted {
                attempted = true;
                ld.obs
                    .cleaner_wake(ld.now(), ld.free_slots_hint.load(Ordering::Relaxed) as u32);
            }
            let outcome = run_pass(ld);
            // Waiters re-check their predicate whether or not the pass
            // made progress (a dead end must not strand them for the
            // full stall bound).
            ld.cleanerd.eased.notify_all();
            match outcome {
                Ok(o) if o.freed > 0 => freed_any = true,
                // A failed pass is invisible to every foreground
                // caller — record what the system looked like when it
                // happened.
                Err(e) => {
                    let _ = ld.flight_dump("cleaner_pass_error", &e.to_string());
                    break;
                }
                // No progress (nothing to reclaim): stop this round and
                // let the periodic poll retry.
                _ => break,
            }
        }

        st = ld.cleanerd.state.lock();
        if attempted {
            st.futile = !freed_any;
        } else if ld.free_slots_hint.load(Ordering::Relaxed) >= low_watermark {
            // Headroom restored by foreground deletions / inline
            // cleaning: accept kicks again.
            st.futile = false;
        }
    }
    st.running = false;
    drop(st);
    ld.cleanerd.eased.notify_all();
}

/// One background cleaning pass: snapshot → relocate → checkpoint →
/// release.
fn run_pass<D: BlockDevice + 'static>(ld: &LldInner<D>) -> Result<PassOutcome> {
    let timer = ld.obs.timer();
    ld.stats.cleaner_runs.inc();
    ld.stats.cleaner_passes.inc();
    // One trace per pass (the pass ordinal), stamped into the
    // thread-local context so the relocation writes the pass issues are
    // attributed to it by the pipelined device.
    let trace = cleaner_trace(ld.stats.cleaner_passes.get());
    let _trace_ctx = ld_disk::trace_scope(trace);
    let mut out = PassOutcome::default();

    // Phase 1: victim snapshot under the log mutex alone. Victims are
    // sealed, non-free slots, packed greedily by ascending live count
    // so that several mostly-empty segments compact into (at most) one
    // output segment's worth of relocated blocks.
    let slots_cap = ld.layout.slots_per_segment();
    let phase_timer = ld.obs.timer();
    ld.obs.stage_begin(ld.now(), trace, Stage::CleanerSnapshot);
    let mut victims: Vec<Victim> = {
        let log = ld.log.lock();
        let builder_slot = log.builder.as_ref().map(|b| b.slot().get());
        let mut cands: Vec<(u32, u32, u64)> = (0..ld.layout.n_segments)
            .filter(|&s| {
                Some(s) != builder_slot
                    && !log.free_slots.contains(&s)
                    && log.slot_seq[s as usize] != 0
            })
            .map(|s| (log.live_count[s as usize], s, log.slot_seq[s as usize]))
            .collect();
        cands.sort_unstable();
        let mut out = Vec::new();
        let mut total_live = 0u32;
        for (live, slot, seq) in cands {
            if !out.is_empty()
                && (total_live + live > slots_cap || out.len() >= MAX_VICTIMS_PER_PASS)
            {
                break;
            }
            out.push(Victim {
                slot,
                seq,
                blocks: log.residents[slot as usize]
                    .iter()
                    .map(|&id| {
                        // Placeholder address; phase 2 fills in the real
                        // committed address under the shard read locks.
                        (
                            id,
                            PhysAddr {
                                segment: SegmentId::new(slot),
                                slot: 0,
                            },
                            Vec::new(),
                        )
                    })
                    .collect(),
                lost: false,
            });
            total_live += live;
        }
        out
    };
    ld.obs.stage_end(
        ld.now(),
        trace,
        Stage::CleanerSnapshot,
        Obs::elapsed(phase_timer),
    );
    if victims.is_empty() {
        return Ok(out);
    }

    // Phase 2: prefilter each victim's resident set under shard *read*
    // locks — record the committed address of every block still mapped
    // into the victim, drop the rest. Foreground writers stay
    // unblocked; anything that moves after this is caught by the
    // re-validation inside the write windows.
    let phase_timer = ld.obs.timer();
    ld.obs.stage_begin(ld.now(), trace, Stage::CleanerPrefilter);
    for v in &mut victims {
        if v.blocks.is_empty() {
            continue;
        }
        let mut bits = 0u64;
        for (id, _, _) in &v.blocks {
            bits |= ld.maps.bit_of(id.get());
        }
        let view = ld.read_view(0, bits);
        v.blocks.retain_mut(|(id, addr, _)| {
            match view
                .committed_view_block(*id)
                .filter(|r| r.allocated)
                .and_then(|r| r.addr)
            {
                Some(a) if a.segment.get() == v.slot => {
                    *addr = a;
                    true
                }
                _ => {
                    out.stale += 1;
                    false
                }
            }
        });
        v.blocks.sort_unstable_by_key(|(id, _, _)| id.get());
    }
    ld.obs.stage_end(
        ld.now(),
        trace,
        Stage::CleanerPrefilter,
        Obs::elapsed(phase_timer),
    );

    // Phase 3: prefetch every victim block's data with *no* lock held.
    // Safe because a sealed slot's bytes never change while the slot is
    // allocated; the only way they can change is the slot being freed
    // and reused, which bumps `slot_seq` — and the write windows below
    // re-verify the sequence number (and each block's committed
    // address) before any prefetched byte is placed, so a torn or stale
    // read is discarded, never relocated. Keeping media reads — the
    // slow half of relocation on a real device — outside the windows is
    // what makes them short.
    let phase_timer = ld.obs.timer();
    ld.obs.stage_begin(ld.now(), trace, Stage::CleanerPrefetch);
    for v in &mut victims {
        for (_, addr, data) in &mut v.blocks {
            data.resize(ld.layout.block_size, 0);
            if ld
                .device
                .read_at(ld.layout.block_offset(*addr), data)
                .is_err()
            {
                v.lost = true;
                break;
            }
        }
    }
    ld.obs.stage_end(
        ld.now(),
        trace,
        Stage::CleanerPrefetch,
        Obs::elapsed(phase_timer),
    );

    // Phase 4: relocate in short scoped write windows. Each window
    // first re-verifies (under the log mutex, which then stays held for
    // the rest of the window) that the victim still holds the
    // snapshotted sealed segment, then re-validates every block's
    // committed address before copying it forward. Unlike the inline
    // cleaner, relocation keeps one slot in reserve (`reserve = 1`):
    // the victims are released only in the final phase, so until then
    // the pass is a space *consumer* and must never take the last slot
    // — that slot stays available for deletions and the inline
    // fallback.
    let mut aborted = false;
    let phase_timer = ld.obs.timer();
    ld.obs.stage_begin(ld.now(), trace, Stage::CleanerRelocate);
    for v in &mut victims {
        if aborted || v.lost {
            // An earlier window failed (device error or out of room),
            // or this victim's prefetch failed: stop relocating, but
            // still release any victims completed before the failure.
            v.lost = true;
            continue;
        }
        let mut lost = false;
        for chunk in v.blocks.chunks(RELOC_BATCH) {
            let mut bits = 0u64;
            for (id, _, _) in chunk {
                bits |= ld.maps.bit_of(id.get());
            }
            let window = ld.with_mutation_at(0, bits, |m| -> Result<bool> {
                {
                    let log = m.log();
                    let s = v.slot as usize;
                    if log.slot_seq[s] != v.seq || log.free_slots.contains(&v.slot) {
                        return Ok(false);
                    }
                }
                for (id, addr, data) in chunk {
                    let ts = match m
                        .map
                        .committed_view_block(*id)
                        .filter(|r| r.allocated && r.addr == Some(*addr))
                    {
                        Some(r) => r.ts,
                        None => {
                            out.stale += 1;
                            continue;
                        }
                    };
                    // Still mapped at the prefetched address, and the
                    // victim still holds the snapshotted segment: the
                    // prefetched bytes are the committed version.
                    m.place_block_data(*id, data, ts, None, 1)?;
                    out.relocated += 1;
                    m.lld.stats.blocks_relocated.inc();
                    m.lld.stats.cleaner_blocks_relocated.inc();
                }
                Ok(true)
            });
            ld.after_scoped();
            match window {
                Ok(true) => {}
                Ok(false) => {
                    lost = true;
                    break;
                }
                Err(_) => {
                    lost = true;
                    aborted = true;
                    break;
                }
            }
        }
        v.lost = lost;
    }
    ld.obs.stage_end(
        ld.now(),
        trace,
        Stage::CleanerRelocate,
        Obs::elapsed(phase_timer),
    );

    // Final phases under one full session: the covering checkpoint
    // (which seals the segment holding the relocation records, so they
    // are on disk before any victim can be reused) and the release
    // sweep. The sweep frees *every* sealed slot that is covered by the
    // checkpoint and empty of live blocks — provably reclaimable
    // whatever happened since the snapshot — which both releases our
    // victims and picks up any other segment foreground deletions
    // emptied.
    if victims.iter().all(|v| v.lost) {
        // Nothing to release; the relocation records (if any) seal with
        // the normal segment stream.
        ld.obs.cleaner_pass_done(
            ld.now(),
            ld.free_slots_hint.load(Ordering::Relaxed) as u32,
            out.relocated,
            timer,
        );
        return Ok(out);
    }
    let phase_timer = ld.obs.timer();
    ld.obs.stage_begin(ld.now(), trace, Stage::CleanerRelease);
    // The covering checkpoint is written incrementally — per-shard
    // snapshot slabs under only each shard's write lock — instead of a
    // stop-the-world table dump. An abort (another checkpoint completed
    // mid-flight) is fine: `checkpoint_seq` is then at least as fresh,
    // and the sweep below keys off it, not off who wrote it.
    ld.checkpoint_incremental()?;
    let freed = ld.with_mutation(|m| -> Result<u32> {
        let mut freed = 0u32;
        let log = m.log();
        let builder_slot = log.builder.as_ref().map(|b| b.slot().get());
        for s in 0..log.slot_seq.len() {
            let seq = log.slot_seq[s];
            let slot = s as u32;
            if seq == 0
                || seq > log.checkpoint_seq
                || log.live_count[s] != 0
                || !log.residents[s].is_empty()
                || Some(slot) == builder_slot
                || log.free_slots.contains(&slot)
            {
                continue;
            }
            log.slot_seq[s] = 0;
            log.free_slots.insert(slot);
            freed += 1;
        }
        m.sync_free_hint();
        Ok(freed)
    });
    ld.obs.stage_end(
        ld.now(),
        trace,
        Stage::CleanerRelease,
        Obs::elapsed(phase_timer),
    );
    out.freed = freed?;

    ld.stats.cleaner_stale_skips.add(out.stale);
    ld.obs.cleaner_pass_done(
        ld.now(),
        ld.free_slots_hint.load(Ordering::Relaxed) as u32,
        out.relocated,
        timer,
    );
    Ok(out)
}

impl<D: BlockDevice> LldInner<D> {
    /// High-watermark backpressure gate: called by space-consuming
    /// public operations *before they take any locks*. When free
    /// segments are at or below `cleaner.backpressure_free_segments`
    /// and a healthy cleanerd is running, the caller kicks it and waits
    /// (bounded) for a pass to free slots, so the operation proceeds
    /// scoped instead of degrading to a full session with inline
    /// cleaning.
    pub(crate) fn cleaner_gate(&self) {
        let cfg = &self.cleaner_cfg;
        if !cfg.enabled || !cfg.background {
            return;
        }
        let stall_at = u64::from(cfg.backpressure_free_segments);
        if self.free_slots_hint.load(Ordering::Relaxed) > stall_at {
            return;
        }
        let deadline = Instant::now() + STALL_MAX;
        let mut st = self.cleanerd.state.lock();
        if !st.running || st.stop || st.futile {
            return;
        }
        st.kicks += 1;
        self.cleanerd.wake.notify_one();
        self.stats.backpressure_stalls.inc();
        // The stall is charged to whatever trace the caller is inside
        // (usually none — the gate runs before any commit machinery);
        // its duration feeds the `backpressure_stall_ns` histogram.
        let trace = ld_disk::current_trace();
        let stall_timer = self.obs.timer();
        self.obs.stage_begin(self.now(), trace, Stage::CleanerGate);
        while self.free_slots_hint.load(Ordering::Relaxed) <= stall_at
            && st.running
            && !st.stop
            && !st.futile
        {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _) = self.cleanerd.eased.wait_timeout(st, deadline - now);
            st = g;
        }
        drop(st);
        self.obs.stage_end(
            self.now(),
            trace,
            Stage::CleanerGate,
            Obs::elapsed(stall_timer),
        );
    }
}
