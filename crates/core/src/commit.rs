//! `EndARU` and `AbortARU`: the shadow → committed transition.
//!
//! Committing a concurrent ARU (§4 of the paper) proceeds in three
//! steps: the buffered data blocks enter the segment stream (tagged with
//! the ARU), the list-operation log is re-executed in the committed
//! state generating the real segment-summary entries, and finally the
//! commit record is emitted. A crash anywhere before the commit record
//! reaches disk recovers to "nothing happened".
//!
//! Because ARUs provide failure atomicity but *not* concurrency control,
//! a logged operation can fail to re-apply if a concurrent stream
//! changed the committed state underneath (e.g. deleted the insertion
//! predecessor). `EndARU` therefore validates the whole log against a
//! scratch shadow state first and reports
//! [`LldError::CommitConflict`] — aborting the ARU — without touching
//! the committed state.
//!
//! A commit locks only the shards its ARU touched: `EndARU` first
//! inspects the ARU under its slot lock, computes the shard set of every
//! buffered write and logged insertion, and — when the log is
//! insert-only and free segments are plentiful — commits in a *scoped*
//! session over exactly those shards. ARUs on disjoint shards therefore
//! commit fully in parallel. Logs containing deletions (whose unlink
//! walks may reach any shard) and commits under space pressure (which
//! may need the inline cleaner) fall back to a full session.

use crate::aru::{Aru, ListOp};
use crate::config::ConcurrencyMode;
use crate::error::{LldError, Result};
use crate::lld::{LldInner, Mutation, StateRef};
use crate::shard::SCRATCH_ARU_RAW;
use crate::summary::Record;
use crate::types::{AruId, BlockId, ListId, Position, Timestamp};
use ld_disk::BlockDevice;
use std::sync::atomic::Ordering;

impl<D: BlockDevice> LldInner<D> {
    /// Commits an atomic recovery unit: all its operations become part
    /// of the committed state atomically, and will become persistent
    /// together (the commit record serializes the ARU at this point in
    /// the merged stream).
    ///
    /// Durability remains lazy: the unit survives a crash once the
    /// segment holding its commit record reaches disk (next
    /// [`flush`](LldInner::flush) / segment roll). Use
    /// [`end_aru_sync`](LldInner::end_aru_sync) to commit *and* wait for
    /// durability.
    ///
    /// # Errors
    ///
    /// * [`LldError::UnknownAru`] — the ARU is not active.
    /// * [`LldError::CommitConflict`] — a logged operation no longer
    ///   applies to the committed state (concurrent interference); the
    ///   ARU has been aborted and the committed state is untouched.
    /// * Device errors / [`LldError::DiskFull`] — if these interrupt a
    ///   commit, the in-memory committed state may hold part of the
    ///   ARU's effects, but the on-disk log can never commit partially
    ///   (no commit record was written); flush-and-recover yields a
    ///   consistent state.
    pub fn end_aru(&self, id: AruId) -> Result<()> {
        self.cleaner_gate();
        let timer = self.obs.timer();
        let raw = id.get();
        let res = match self.concurrency {
            ConcurrencyMode::Sequential => self.with_mutation(|m| {
                // "Old" LLD: operations already applied to the committed
                // state (tagged); only the commit record is needed.
                let Some(aru) = m.map.aru_remove(raw) else {
                    return Err(LldError::UnknownAru(id));
                };
                let ts = m.tick();
                m.emit(Record::Commit { aru: id, ts })?;
                m.release_ids(aru.pending_free_blocks, aru.pending_free_lists);
                m.lld.stats.arus_committed.inc();
                Ok(ts.get())
            }),
            ConcurrencyMode::Concurrent => self.end_aru_concurrent(id),
        };
        match &res {
            Ok(ts) => self.obs.aru_commit(raw, *ts, timer),
            Err(LldError::CommitConflict { .. }) => self.obs.aru_conflict(raw, self.now()),
            Err(_) => {}
        }
        res.map(|_| ())
    }

    fn end_aru_concurrent(&self, id: AruId) -> Result<u64> {
        let raw = id.get();
        // Plan the session under the ARU's slot lock alone: which shards
        // does the commit touch, and is it insert-only?
        let plan = {
            let slots = self.maps.lock_arus(self.maps.bit_of(raw));
            let Some(aru) = slots[0].1.get(&raw) else {
                return Err(LldError::UnknownAru(id));
            };
            self.scoped_commit_shards(aru)
                .filter(|_| self.commit_headroom_ok(aru.shadow_data.len() as u64))
        };
        let res = match plan {
            Some(shards) => {
                let r = self.with_mutation_at(self.maps.bit_of(raw), shards, |m| {
                    // The slot lock was dropped between planning and the
                    // session: the ARU may have been ended elsewhere.
                    if !m.map.aru_contains(raw) {
                        return Err(LldError::UnknownAru(id));
                    }
                    m.commit_concurrent(id)
                });
                self.after_scoped();
                r
            }
            None => {
                self.stats.commit_full_fallbacks.inc();
                self.with_mutation(|m| {
                    if !m.map.aru_contains(raw) {
                        return Err(LldError::UnknownAru(id));
                    }
                    m.commit_concurrent(id)
                })
            }
        };
        res.map(|()| self.now())
    }

    /// The shard set a scoped commit of `aru` needs, or `None` if the
    /// log contains deletions (whose unlink walks can reach any shard)
    /// and must run in a full session.
    fn scoped_commit_shards(&self, aru: &Aru) -> Option<u64> {
        let mut set = 0u64;
        for op in &aru.link_log {
            match *op {
                ListOp::Insert { list, block, pred } => {
                    set |= self.maps.bit_of(list.get()) | self.maps.bit_of(block.get());
                    if let Some(p) = pred {
                        set |= self.maps.bit_of(p.get());
                    }
                }
                ListOp::DeleteBlock { .. } | ListOp::DeleteList { .. } => return None,
            }
        }
        for b in aru.shadow_data.keys() {
            set |= self.maps.bit_of(b.get());
        }
        for b in aru.shadow.blocks.keys() {
            set |= self.maps.bit_of(b.get());
        }
        for l in aru.shadow.lists.keys() {
            set |= self.maps.bit_of(l.get());
        }
        Some(set)
    }

    /// Whether a scoped commit that will stream `buffered` data blocks
    /// has enough free segments to proceed without the inline cleaner
    /// (which only a full session may run).
    fn commit_headroom_ok(&self, buffered: u64) -> bool {
        if !self.cleaner_cfg.enabled {
            return true;
        }
        let slots = u64::from(self.layout.slots_per_segment()).max(1);
        let needed = buffered / slots + 1;
        self.free_slots_hint.load(Ordering::Relaxed)
            > u64::from(self.cleaner_cfg.min_free_segments) + needed
    }

    /// Aborts an atomic recovery unit, discarding its shadow state.
    ///
    /// This is an extension beyond the paper (whose ARUs are only undone
    /// implicitly, by failure); it falls out of the shadow-state design
    /// for free. Touches nothing but the ARU's own slot.
    ///
    /// # Errors
    ///
    /// [`LldError::UnknownAru`] for a dead ARU, and
    /// [`LldError::AbortUnsupported`] in sequential mode, where
    /// operations apply directly to the committed state and cannot be
    /// rolled back at run time.
    pub fn abort_aru(&self, id: AruId) -> Result<()> {
        let mut slots = self.maps.lock_arus(self.maps.bit_of(id.get()));
        if !slots[0].1.contains_key(&id.get()) {
            return Err(LldError::UnknownAru(id));
        }
        if self.concurrency == ConcurrencyMode::Sequential {
            return Err(LldError::AbortUnsupported);
        }
        slots[0].1.remove(&id.get());
        self.stats.arus_aborted.inc();
        self.obs.aru_abort(id.get(), self.now());
        Ok(())
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    pub(crate) fn release_ids(&mut self, blocks: Vec<BlockId>, lists: Vec<ListId>) {
        for b in blocks {
            self.map.block_shard_mut(b).free_blocks.insert(b.get());
        }
        for l in lists {
            self.map.list_shard_mut(l).free_lists.insert(l.get());
        }
    }

    fn commit_concurrent(&mut self, id: AruId) -> Result<()> {
        let raw = id.get();

        // ---- Validation pass -------------------------------------------------
        // (a) every buffered data block must still be allocated in the
        //     committed state;
        // (b) the list-operation log must re-apply cleanly, checked
        //     against a scratch shadow state so the committed state is
        //     untouched on failure. The scratch ARU lives outside the
        //     slot table (sentinel id), so validation needs no extra
        //     locks.
        let mut conflict: Option<String> = None;
        let data_blocks: Vec<BlockId> = self
            .map
            .aru(raw)
            .expect("caller checked")
            .shadow_data
            .keys()
            .copied()
            .collect();
        for b in &data_blocks {
            if self
                .map
                .committed_view_block(*b)
                .is_none_or(|r| !r.allocated)
            {
                conflict = Some(format!(
                    "buffered write to {b}, which is no longer allocated"
                ));
                break;
            }
        }
        if conflict.is_none() {
            let ops = self.map.aru(raw).expect("caller checked").link_log.clone();
            let scratch = AruId::new(SCRATCH_ARU_RAW);
            self.map.scratch = Some(Aru::new(scratch, Timestamp::ZERO));
            let mut fb = Vec::new();
            let mut fl = Vec::new();
            for op in &ops {
                if let Err(e) = self.apply_list_op(
                    StateRef::Shadow(scratch),
                    op,
                    Timestamp::ZERO,
                    &mut fb,
                    &mut fl,
                ) {
                    conflict = Some(e.to_string());
                    break;
                }
            }
            self.map.scratch = None;
        }
        if let Some(detail) = conflict {
            self.map.aru_remove(raw);
            self.lld.stats.commit_conflicts.inc();
            self.lld.stats.arus_aborted.inc();
            return Err(LldError::CommitConflict { aru: id, detail });
        }

        // ---- Real pass --------------------------------------------------------
        let aru = self.map.aru_remove(raw).expect("validated above");
        let commit_ts = self.tick();

        // Shard-spread observability: how many mapping shards did this
        // unit's effects touch?
        let mut touched = 0u64;
        for b in aru.shadow_data.keys() {
            touched |= self.lld.maps.bit_of(b.get());
        }
        for op in &aru.link_log {
            match *op {
                ListOp::Insert { list, block, pred } => {
                    touched |= self.lld.maps.bit_of(list.get()) | self.lld.maps.bit_of(block.get());
                    if let Some(p) = pred {
                        touched |= self.lld.maps.bit_of(p.get());
                    }
                }
                ListOp::DeleteBlock { block } => touched |= self.lld.maps.bit_of(block.get()),
                ListOp::DeleteList { list } => touched |= self.lld.maps.bit_of(list.get()),
            }
        }
        let spread = u64::from(touched.count_ones());
        if spread > 1 {
            self.lld.stats.cross_shard_commits.inc();
        } else {
            self.lld.stats.single_shard_commits.inc();
        }
        self.lld.obs.shard_spread(spread);

        // 1. Buffered block data enters the segment stream, tagged.
        for (b, data) in &aru.shadow_data {
            self.place_block_data(*b, data, commit_ts, Some(id), 1)?;
            self.lld.stats.shadow_records_merged.inc();
        }

        // 2. Re-execute the list-operation log in the committed state,
        //    generating the real summary entries.
        let mut freed_blocks = Vec::new();
        let mut freed_lists = Vec::new();
        for op in &aru.link_log {
            self.apply_list_op(
                StateRef::Committed,
                op,
                commit_ts,
                &mut freed_blocks,
                &mut freed_lists,
            )
            .map_err(|e| LldError::Corrupt(format!("validated commit failed to apply: {e}")))?;
            let rec = match *op {
                ListOp::Insert { list, block, pred } => Record::Link {
                    list,
                    block,
                    pred,
                    ts: commit_ts,
                    aru: Some(id),
                },
                ListOp::DeleteBlock { block } => Record::DeleteBlock {
                    block,
                    ts: commit_ts,
                    aru: Some(id),
                },
                ListOp::DeleteList { list } => Record::DeleteList {
                    list,
                    ts: commit_ts,
                    aru: Some(id),
                },
            };
            self.emit(rec)?;
            self.lld.stats.shadow_records_merged.inc();
        }

        // 3. The commit record makes the whole unit recoverable.
        self.emit(Record::Commit {
            aru: id,
            ts: commit_ts,
        })?;

        // Identifiers deallocated by the ARU become reusable only now,
        // after the commit record precedes any reallocation in the log.
        // (Scoped commits are insert-only and free nothing, so the
        // per-shard inserts below never reach an un-held shard.)
        self.release_ids(freed_blocks, freed_lists);
        self.release_ids(aru.pending_free_blocks, aru.pending_free_lists);
        self.lld.stats.arus_committed.inc();
        Ok(())
    }

    /// Applies one logged list operation to state `st`, collecting
    /// identifiers this made free. Used for commit validation (scratch
    /// shadow state), commit replay (committed state), and recovery
    /// replay (committed state).
    pub(crate) fn apply_list_op(
        &mut self,
        st: StateRef,
        op: &ListOp,
        ts: Timestamp,
        freed_blocks: &mut Vec<BlockId>,
        freed_lists: &mut Vec<ListId>,
    ) -> Result<()> {
        match *op {
            ListOp::Insert { list, block, pred } => {
                let rec = self
                    .map
                    .view_block(st, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                if let Some(on) = rec.list {
                    return Err(LldError::AlreadyOnList { block, list: on });
                }
                let pos = match pred {
                    None => Position::First,
                    Some(p) => Position::After(p),
                };
                self.insert_into_list(st, list, block, pos, ts)
            }
            ListOp::DeleteBlock { block } => {
                self.map
                    .view_block(st, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                self.unlink_block(st, block, ts)?;
                self.dealloc_block(st, block, ts)?;
                freed_blocks.push(block);
                Ok(())
            }
            ListOp::DeleteList { list } => {
                let members = self.walk_list(st, list)?;
                for &b in &members {
                    self.dealloc_block(st, b, ts)?;
                }
                self.dealloc_list(st, list, ts)?;
                freed_blocks.extend(members);
                freed_lists.push(list);
                Ok(())
            }
        }
    }
}
