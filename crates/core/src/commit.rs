//! `EndARU` and `AbortARU`: the shadow → committed transition.
//!
//! Committing a concurrent ARU (§4 of the paper) proceeds in three
//! steps: the buffered data blocks enter the segment stream (tagged with
//! the ARU), the list-operation log is re-executed in the committed
//! state generating the real segment-summary entries, and finally the
//! commit record is emitted. A crash anywhere before the commit record
//! reaches disk recovers to "nothing happened".
//!
//! Because ARUs provide failure atomicity but *not* concurrency control,
//! a logged operation can fail to re-apply if a concurrent stream
//! changed the committed state underneath (e.g. deleted the insertion
//! predecessor). `EndARU` therefore validates the whole log against a
//! scratch shadow state first and reports
//! [`LldError::CommitConflict`] — aborting the ARU — without touching
//! the committed state.

use crate::aru::{Aru, ListOp};
use crate::config::ConcurrencyMode;
use crate::error::{LldError, Result};
use crate::lld::{Lld, Mutation, StateRef};
use crate::summary::Record;
use crate::types::{AruId, BlockId, ListId, Position, Timestamp};
use ld_disk::BlockDevice;

impl<D: BlockDevice> Lld<D> {
    /// Commits an atomic recovery unit: all its operations become part
    /// of the committed state atomically, and will become persistent
    /// together (the commit record serializes the ARU at this point in
    /// the merged stream).
    ///
    /// Durability remains lazy: the unit survives a crash once the
    /// segment holding its commit record reaches disk (next
    /// [`flush`](Lld::flush) / segment roll). Use
    /// [`end_aru_sync`](Lld::end_aru_sync) to commit *and* wait for
    /// durability.
    ///
    /// # Errors
    ///
    /// * [`LldError::UnknownAru`] — the ARU is not active.
    /// * [`LldError::CommitConflict`] — a logged operation no longer
    ///   applies to the committed state (concurrent interference); the
    ///   ARU has been aborted and the committed state is untouched.
    /// * Device errors / [`LldError::DiskFull`] — if these interrupt a
    ///   commit, the in-memory committed state may hold part of the
    ///   ARU's effects, but the on-disk log can never commit partially
    ///   (no commit record was written); flush-and-recover yields a
    ///   consistent state.
    pub fn end_aru(&self, id: AruId) -> Result<()> {
        let timer = self.obs.timer();
        let raw = id.get();
        let res = self.with_mutation(|m| {
            if !m.map.arus.contains_key(&raw) {
                return Err(LldError::UnknownAru(id));
            }
            match m.lld.concurrency {
                ConcurrencyMode::Sequential => {
                    // "Old" LLD: operations already applied to the
                    // committed state (tagged); only the commit record is
                    // needed.
                    let aru = m.map.arus.remove(&raw).expect("checked above");
                    let ts = m.tick();
                    m.emit(Record::Commit { aru: id, ts })?;
                    m.release_ids(aru.pending_free_blocks, aru.pending_free_lists);
                    m.lld.stats.arus_committed.inc();
                    Ok(ts.get())
                }
                ConcurrencyMode::Concurrent => {
                    m.commit_concurrent(id)?;
                    Ok(m.lld.now())
                }
            }
        });
        match &res {
            Ok(ts) => self.obs.aru_commit(raw, *ts, timer),
            Err(LldError::CommitConflict { .. }) => self.obs.aru_conflict(raw, self.now()),
            Err(_) => {}
        }
        res.map(|_| ())
    }

    /// Aborts an atomic recovery unit, discarding its shadow state.
    ///
    /// This is an extension beyond the paper (whose ARUs are only undone
    /// implicitly, by failure); it falls out of the shadow-state design
    /// for free.
    ///
    /// # Errors
    ///
    /// [`LldError::UnknownAru`] for a dead ARU, and
    /// [`LldError::AbortUnsupported`] in sequential mode, where
    /// operations apply directly to the committed state and cannot be
    /// rolled back at run time.
    pub fn abort_aru(&self, id: AruId) -> Result<()> {
        let mut map = self.map.write();
        if !map.arus.contains_key(&id.get()) {
            return Err(LldError::UnknownAru(id));
        }
        if self.concurrency == ConcurrencyMode::Sequential {
            return Err(LldError::AbortUnsupported);
        }
        map.arus.remove(&id.get());
        self.stats.arus_aborted.inc();
        self.obs.aru_abort(id.get(), self.now());
        Ok(())
    }
}

impl<D: BlockDevice> Mutation<'_, D> {
    pub(crate) fn release_ids(&mut self, blocks: Vec<BlockId>, lists: Vec<ListId>) {
        for b in blocks {
            self.map.free_blocks.insert(b.get());
        }
        for l in lists {
            self.map.free_lists.insert(l.get());
        }
    }

    fn commit_concurrent(&mut self, id: AruId) -> Result<()> {
        let raw = id.get();

        // ---- Validation pass -------------------------------------------------
        // (a) every buffered data block must still be allocated in the
        //     committed state;
        // (b) the list-operation log must re-apply cleanly, checked
        //     against a scratch shadow state so the committed state is
        //     untouched on failure.
        let mut conflict: Option<String> = None;
        let data_blocks: Vec<BlockId> = self.map.arus[&raw].shadow_data.keys().copied().collect();
        for b in &data_blocks {
            if self
                .map
                .committed_view_block(*b)
                .is_none_or(|r| !r.allocated)
            {
                conflict = Some(format!(
                    "buffered write to {b}, which is no longer allocated"
                ));
                break;
            }
        }
        if conflict.is_none() {
            let ops = self.map.arus[&raw].link_log.clone();
            let temp = AruId::new(self.map.next_aru_raw);
            self.map.next_aru_raw += 1;
            self.map
                .arus
                .insert(temp.get(), Aru::new(temp, Timestamp::ZERO));
            let mut fb = Vec::new();
            let mut fl = Vec::new();
            for op in &ops {
                if let Err(e) = self.apply_list_op(
                    StateRef::Shadow(temp),
                    op,
                    Timestamp::ZERO,
                    &mut fb,
                    &mut fl,
                ) {
                    conflict = Some(e.to_string());
                    break;
                }
            }
            self.map.arus.remove(&temp.get());
        }
        if let Some(detail) = conflict {
            self.map.arus.remove(&raw);
            self.lld.stats.commit_conflicts.inc();
            self.lld.stats.arus_aborted.inc();
            return Err(LldError::CommitConflict { aru: id, detail });
        }

        // ---- Real pass --------------------------------------------------------
        let aru = self.map.arus.remove(&raw).expect("validated above");
        let commit_ts = self.tick();

        // 1. Buffered block data enters the segment stream, tagged.
        for (b, data) in &aru.shadow_data {
            self.place_block_data(*b, data, commit_ts, Some(id), 1)?;
            self.lld.stats.shadow_records_merged.inc();
        }

        // 2. Re-execute the list-operation log in the committed state,
        //    generating the real summary entries.
        let mut freed_blocks = Vec::new();
        let mut freed_lists = Vec::new();
        for op in &aru.link_log {
            self.apply_list_op(
                StateRef::Committed,
                op,
                commit_ts,
                &mut freed_blocks,
                &mut freed_lists,
            )
            .map_err(|e| LldError::Corrupt(format!("validated commit failed to apply: {e}")))?;
            let rec = match *op {
                ListOp::Insert { list, block, pred } => Record::Link {
                    list,
                    block,
                    pred,
                    ts: commit_ts,
                    aru: Some(id),
                },
                ListOp::DeleteBlock { block } => Record::DeleteBlock {
                    block,
                    ts: commit_ts,
                    aru: Some(id),
                },
                ListOp::DeleteList { list } => Record::DeleteList {
                    list,
                    ts: commit_ts,
                    aru: Some(id),
                },
            };
            self.emit(rec)?;
            self.lld.stats.shadow_records_merged.inc();
        }

        // 3. The commit record makes the whole unit recoverable.
        self.emit(Record::Commit {
            aru: id,
            ts: commit_ts,
        })?;

        // Identifiers deallocated by the ARU become reusable only now,
        // after the commit record precedes any reallocation in the log.
        self.release_ids(freed_blocks, freed_lists);
        self.release_ids(aru.pending_free_blocks, aru.pending_free_lists);
        self.lld.stats.arus_committed.inc();
        Ok(())
    }

    /// Applies one logged list operation to state `st`, collecting
    /// identifiers this made free. Used for commit validation (scratch
    /// shadow state), commit replay (committed state), and recovery
    /// replay (committed state).
    pub(crate) fn apply_list_op(
        &mut self,
        st: StateRef,
        op: &ListOp,
        ts: Timestamp,
        freed_blocks: &mut Vec<BlockId>,
        freed_lists: &mut Vec<ListId>,
    ) -> Result<()> {
        match *op {
            ListOp::Insert { list, block, pred } => {
                let rec = self
                    .map
                    .view_block(st, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                if let Some(on) = rec.list {
                    return Err(LldError::AlreadyOnList { block, list: on });
                }
                let pos = match pred {
                    None => Position::First,
                    Some(p) => Position::After(p),
                };
                self.insert_into_list(st, list, block, pos, ts)
            }
            ListOp::DeleteBlock { block } => {
                self.map
                    .view_block(st, block)
                    .filter(|r| r.allocated)
                    .ok_or(LldError::BlockNotAllocated(block))?;
                self.unlink_block(st, block, ts)?;
                self.dealloc_block(st, block, ts)?;
                freed_blocks.push(block);
                Ok(())
            }
            ListOp::DeleteList { list } => {
                let members = self.walk_list(st, list)?;
                for &b in &members {
                    self.dealloc_block(st, b, ts)?;
                }
                self.dealloc_list(st, list, ts)?;
                freed_blocks.extend(members);
                freed_lists.push(list);
                Ok(())
            }
        }
    }
}
