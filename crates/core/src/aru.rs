//! Per-ARU shadow state: alternative records, buffered block data, and
//! the list-operation log.

use crate::state::StateOverlay;
use crate::types::{AruId, BlockId, ListId, Timestamp};
use std::collections::BTreeMap;

/// One logged list operation (§4 of the paper: "a log entry of the form
/// insert-block-after-predecessor is added to the log of list operations
/// for the specific ARU").
///
/// List operations inside an ARU execute in the shadow state without
/// generating segment-summary entries; at commit the log is re-executed
/// in the committed state, generating the real entries. This is what
/// makes merging different shadow versions of the same list possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ListOp {
    /// Insert `block` into `list` after `pred` (`None` = at the front).
    Insert {
        list: ListId,
        block: BlockId,
        pred: Option<BlockId>,
    },
    /// Remove `block` from its list and deallocate it.
    DeleteBlock { block: BlockId },
    /// Deallocate `list` together with any blocks still on it.
    DeleteList { list: ListId },
}

/// The in-memory state of one active atomic recovery unit.
#[derive(Debug)]
pub(crate) struct Aru {
    pub(crate) id: AruId,
    /// Alternative block/list records local to this ARU (the shadow
    /// state). Isolated from all other ARUs under the paper's option-3
    /// read visibility.
    pub(crate) shadow: StateOverlay,
    /// Data written inside this ARU, buffered until commit (at commit
    /// each block enters the segment stream and gets a physical
    /// address). Keyed and flushed in block order for determinism; one
    /// buffered version per block (the most recent write wins).
    pub(crate) shadow_data: BTreeMap<BlockId, Vec<u8>>,
    /// The list-operation log, replayed in order at commit.
    pub(crate) link_log: Vec<ListOp>,
    /// When the ARU began (informational).
    pub(crate) started: Timestamp,
    /// Identifiers deallocated by this ARU's operations; released for
    /// reuse only when the commit record has been emitted (so recovery
    /// can never observe a reallocation that precedes the deallocating
    /// ARU's commit in the log).
    pub(crate) pending_free_blocks: Vec<BlockId>,
    pub(crate) pending_free_lists: Vec<ListId>,
}

impl Aru {
    pub(crate) fn new(id: AruId, started: Timestamp) -> Self {
        Aru {
            id,
            shadow: StateOverlay::default(),
            shadow_data: BTreeMap::new(),
            link_log: Vec::new(),
            started,
            pending_free_blocks: Vec::new(),
            pending_free_lists: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_aru_is_empty() {
        let a = Aru::new(AruId::new(1), Timestamp::new(5));
        assert!(a.shadow.is_empty());
        assert!(a.shadow_data.is_empty());
        assert!(a.link_log.is_empty());
        assert_eq!(a.started, Timestamp::new(5));
        assert_eq!(a.id, AruId::new(1));
    }

    #[test]
    fn shadow_data_keeps_latest_write_per_block() {
        let mut a = Aru::new(AruId::new(1), Timestamp::ZERO);
        a.shadow_data.insert(BlockId::new(3), vec![1, 2]);
        a.shadow_data.insert(BlockId::new(3), vec![9, 9]);
        assert_eq!(a.shadow_data.len(), 1);
        assert_eq!(a.shadow_data[&BlockId::new(3)], vec![9, 9]);
    }
}
