use crate::types::{AruId, BlockId, ListId};
use ld_disk::DiskError;
use std::fmt;

/// Errors reported by the logical disk.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LldError {
    /// An error from the underlying block device.
    Disk(DiskError),
    /// The named block is not allocated in the state visible to the
    /// operation.
    BlockNotAllocated(BlockId),
    /// The named list is not allocated in the state visible to the
    /// operation.
    ListNotAllocated(ListId),
    /// The named ARU is not active (never began, already ended, or
    /// already aborted).
    UnknownAru(AruId),
    /// `BeginARU` was called while another ARU is active on a logical
    /// disk configured without concurrent-ARU support (the paper's "old"
    /// version).
    ConcurrencyUnsupported {
        /// The ARU that is already active.
        active: AruId,
    },
    /// The block is already on a list (a block belongs to at most one
    /// list; it must be deleted, not moved).
    AlreadyOnList {
        /// The block being inserted.
        block: BlockId,
        /// The list it already belongs to.
        list: ListId,
    },
    /// The block named as an insertion predecessor is not on the list.
    PredecessorNotOnList {
        /// The list being inserted into.
        list: ListId,
        /// The claimed predecessor.
        pred: BlockId,
    },
    /// A write buffer was not exactly one block long.
    WrongBlockLength {
        /// Bytes supplied.
        got: usize,
        /// The configured block size.
        expected: usize,
    },
    /// Committing the ARU failed because a logged list operation no
    /// longer applies to the committed state (a concurrent operation
    /// changed it). ARUs provide failure atomicity only; clients must
    /// provide their own concurrency control.
    CommitConflict {
        /// The ARU whose commit failed; it has been aborted.
        aru: AruId,
        /// Human-readable description of the conflicting operation.
        detail: String,
    },
    /// The device is out of free segments (even after cleaning) or the
    /// allocation limits set at format time were reached.
    DiskFull,
    /// The operation requires that no ARUs are active (e.g. the
    /// orphan-reclaiming consistency check).
    ArusActive {
        /// Number of currently active ARUs.
        count: usize,
    },
    /// `AbortARU` was called on a logical disk configured without
    /// concurrent-ARU support: sequential ARUs apply their operations
    /// directly to the committed state and cannot be rolled back at run
    /// time (only a failure un-does them, at recovery).
    AbortUnsupported,
    /// The device does not contain a valid logical disk, or its on-disk
    /// structures are corrupt beyond the torn-tail case recovery handles.
    Corrupt(String),
    /// An invalid configuration was supplied.
    Config(String),
}

impl fmt::Display for LldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LldError::Disk(e) => write!(f, "device error: {e}"),
            LldError::BlockNotAllocated(b) => write!(f, "block {b} is not allocated"),
            LldError::ListNotAllocated(l) => write!(f, "list {l} is not allocated"),
            LldError::UnknownAru(a) => write!(f, "{a} is not an active atomic recovery unit"),
            LldError::ConcurrencyUnsupported { active } => write!(
                f,
                "concurrent ARUs are not supported by this configuration ({active} is active)"
            ),
            LldError::AlreadyOnList { block, list } => {
                write!(f, "block {block} is already on list {list}")
            }
            LldError::PredecessorNotOnList { list, pred } => {
                write!(f, "predecessor {pred} is not on list {list}")
            }
            LldError::WrongBlockLength { got, expected } => {
                write!(f, "write of {got} bytes, expected exactly {expected}")
            }
            LldError::CommitConflict { aru, detail } => {
                write!(
                    f,
                    "commit of {aru} conflicts with committed state: {detail}"
                )
            }
            LldError::DiskFull => write!(f, "logical disk is full"),
            LldError::ArusActive { count } => {
                write!(f, "operation requires no active ARUs ({count} active)")
            }
            LldError::AbortUnsupported => {
                write!(f, "sequential ARUs cannot be aborted at run time")
            }
            LldError::Corrupt(msg) => write!(f, "on-disk structures are corrupt: {msg}"),
            LldError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for LldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LldError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for LldError {
    fn from(e: DiskError) -> Self {
        LldError::Disk(e)
    }
}

/// Result alias for logical-disk operations.
pub type Result<T> = std::result::Result<T, LldError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = LldError::BlockNotAllocated(BlockId::new(3));
        assert_eq!(e.to_string(), "block b3 is not allocated");
        let e = LldError::CommitConflict {
            aru: AruId::new(2),
            detail: "delete of b9".into(),
        };
        assert!(e.to_string().contains("aru2"));
        assert!(e.to_string().contains("b9"));
    }

    #[test]
    fn disk_error_is_source() {
        use std::error::Error;
        let e = LldError::from(DiskError::Crashed);
        assert!(e.source().is_some());
        assert!(LldError::DiskFull.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LldError>();
    }
}
