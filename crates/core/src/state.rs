//! Block and list records, the persistent tables, and state overlays.
//!
//! The paper (§4) keeps the persistent state in two tables — the
//! *block-number-map* and the *list-table* — and augments them with
//! in-memory lists of *alternative records* describing blocks and lists in
//! the committed and shadow states, meshed so both lookup-by-identifier
//! and iteration-by-state are efficient.
//!
//! This implementation keeps the same three-level structure with the same
//! asymptotics: [`Tables`] is the persistent state, and each committed or
//! shadow state is a [`StateOverlay`] — a map from identifier to
//! alternative record. Lookup by identifier is the paper's "standardised
//! search" (shadow → committed → persistent); iteration by state is
//! iteration over one overlay; the whole-state transitions (shadow →
//! committed at `EndARU`, committed → persistent at segment write) drain
//! one overlay into the level below.

use crate::types::{BlockId, ListId, PhysAddr, Timestamp};
use std::collections::HashMap;

/// One version of a logical block's meta-data: the block-number-map
/// entry of the paper (physical address, allocation state, position
/// within its list, and the time of the last operation on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRecord {
    /// Whether the block is allocated in this version.
    pub allocated: bool,
    /// Physical location of the block's data, if it has ever been
    /// written.
    pub addr: Option<PhysAddr>,
    /// The next block on the same list.
    pub successor: Option<BlockId>,
    /// The list this block belongs to. `None` for a block that was
    /// allocated inside a still-uncommitted ARU (allocation is always
    /// committed; insertion into the list is shadow state).
    pub list: Option<ListId>,
    /// Time of the last operation that produced this version.
    pub ts: Timestamp,
}

impl BlockRecord {
    /// A freshly allocated block: no data, not on any list.
    pub fn fresh(ts: Timestamp) -> Self {
        BlockRecord {
            allocated: true,
            addr: None,
            successor: None,
            list: None,
            ts,
        }
    }
}

/// One version of a list's meta-data: the list-table entry of the paper
/// (first and last block of the list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListRecord {
    /// Whether the list is allocated in this version.
    pub allocated: bool,
    /// The first block on the list.
    pub first: Option<BlockId>,
    /// The last block on the list.
    pub last: Option<BlockId>,
    /// Time of the last operation that produced this version.
    pub ts: Timestamp,
}

impl ListRecord {
    /// A freshly allocated, empty list.
    pub fn fresh(ts: Timestamp) -> Self {
        ListRecord {
            allocated: true,
            first: None,
            last: None,
            ts,
        }
    }
}

/// The persistent state: the block-number-map and the list-table.
///
/// Entries exist only for allocated blocks/lists; deallocation removes
/// the entry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tables {
    /// The block-number-map.
    pub blocks: HashMap<BlockId, BlockRecord>,
    /// The list-table.
    pub lists: HashMap<ListId, ListRecord>,
}

/// A set of alternative records layered over the state below it
/// (committed over persistent; shadow over committed).
///
/// An entry is present only if the record *differs* from the state below
/// — including deallocations, which are represented as records with
/// `allocated == false`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateOverlay {
    /// Alternative block records in this state.
    pub blocks: HashMap<BlockId, BlockRecord>,
    /// Alternative list records in this state.
    pub lists: HashMap<ListId, ListRecord>,
}

impl StateOverlay {
    /// Whether the overlay holds no alternative records.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() && self.lists.is_empty()
    }

    /// Number of alternative records (blocks + lists).
    pub fn len(&self) -> usize {
        self.blocks.len() + self.lists.len()
    }

    /// Drains every alternative record into `tables` (the transition of
    /// a whole state into the level below). Allocated records replace
    /// the entry below if they are more recent (they always are under
    /// the monotonic clock; the guard mirrors the paper's "replaces the
    /// current version if more recent, otherwise it is discarded");
    /// deallocated records remove the entry.
    pub fn drain_into(&mut self, tables: &mut Tables) {
        for (id, rec) in self.blocks.drain() {
            if rec.allocated {
                match tables.blocks.get(&id) {
                    Some(existing) if existing.ts > rec.ts => {}
                    _ => {
                        tables.blocks.insert(id, rec);
                    }
                }
            } else {
                tables.blocks.remove(&id);
            }
        }
        for (id, rec) in self.lists.drain() {
            if rec.allocated {
                match tables.lists.get(&id) {
                    Some(existing) if existing.ts > rec.ts => {}
                    _ => {
                        tables.lists.insert(id, rec);
                    }
                }
            } else {
                tables.lists.remove(&id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SegmentId;

    fn addr(seg: u32, slot: u32) -> PhysAddr {
        PhysAddr {
            segment: SegmentId::new(seg),
            slot,
        }
    }

    #[test]
    fn fresh_records() {
        let b = BlockRecord::fresh(Timestamp::new(3));
        assert!(b.allocated);
        assert_eq!(b.addr, None);
        assert_eq!(b.list, None);
        let l = ListRecord::fresh(Timestamp::new(4));
        assert!(l.allocated && l.first.is_none() && l.last.is_none());
    }

    #[test]
    fn drain_inserts_updates_and_removes() {
        let mut tables = Tables::default();
        tables.blocks.insert(
            BlockId::new(1),
            BlockRecord {
                addr: Some(addr(0, 0)),
                ..BlockRecord::fresh(Timestamp::new(1))
            },
        );
        tables
            .lists
            .insert(ListId::new(1), ListRecord::fresh(Timestamp::new(1)));

        let mut overlay = StateOverlay::default();
        // Update block 1 with a newer version.
        overlay.blocks.insert(
            BlockId::new(1),
            BlockRecord {
                addr: Some(addr(2, 5)),
                ..BlockRecord::fresh(Timestamp::new(9))
            },
        );
        // Insert a brand-new block 2.
        overlay
            .blocks
            .insert(BlockId::new(2), BlockRecord::fresh(Timestamp::new(10)));
        // Deallocate list 1.
        overlay.lists.insert(
            ListId::new(1),
            ListRecord {
                allocated: false,
                ..ListRecord::fresh(Timestamp::new(11))
            },
        );

        overlay.drain_into(&mut tables);
        assert!(overlay.is_empty());
        assert_eq!(tables.blocks[&BlockId::new(1)].addr, Some(addr(2, 5)));
        assert!(tables.blocks.contains_key(&BlockId::new(2)));
        assert!(!tables.lists.contains_key(&ListId::new(1)));
    }

    #[test]
    fn drain_discards_stale_versions() {
        // The "otherwise it is discarded" branch: an overlay record older
        // than the table entry does not replace it.
        let mut tables = Tables::default();
        tables
            .blocks
            .insert(BlockId::new(1), BlockRecord::fresh(Timestamp::new(20)));
        let mut overlay = StateOverlay::default();
        overlay
            .blocks
            .insert(BlockId::new(1), BlockRecord::fresh(Timestamp::new(5)));
        overlay.drain_into(&mut tables);
        assert_eq!(tables.blocks[&BlockId::new(1)].ts, Timestamp::new(20));
    }

    #[test]
    fn overlay_len_counts_both_kinds() {
        let mut o = StateOverlay::default();
        assert!(o.is_empty());
        o.blocks
            .insert(BlockId::new(1), BlockRecord::fresh(Timestamp::ZERO));
        o.lists
            .insert(ListId::new(1), ListRecord::fresh(Timestamp::ZERO));
        assert_eq!(o.len(), 2);
        assert!(!o.is_empty());
    }
}
