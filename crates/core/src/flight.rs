//! The crash flight recorder.
//!
//! Some failures happen on threads where no caller is waiting for the
//! result: the pipelined device latches an error on its I/O thread, a
//! background cleaner pass fails, the cleaner thread panics. The error
//! *does* resurface eventually (the pipeline replays it to the next
//! caller; the cleaner's poisoned locks take the next session down),
//! but by then the interesting state — what the system was doing when
//! it went wrong — is gone. The flight recorder captures that state at
//! the moment of failure: a JSON sidecar file with the failure reason,
//! the last trace events, every histogram, and the final counter
//! snapshot, readable later with `ldctl flight <file>`.
//!
//! Dumps are strictly best-effort. A recorder must never turn an
//! already-failing background thread into a second failure, so every
//! I/O error is swallowed and [`FlightRecorder::dump`] simply returns
//! `None`. Enabled by [`LldConfig::flight_dir`](crate::LldConfig) /
//! the `LD_ARU_FLIGHT_DIR` environment variable.

use crate::obs::{json, ObsSnapshot};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Writes flight dumps (`ld-flight-<pid>-<n>.json`) into a fixed
/// directory, created on first dump.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder dumping into `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        FlightRecorder {
            dir: dir.into(),
            seq: AtomicU64::new(0),
        }
    }

    /// The directory dumps are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one dump file and returns its path. `reason` is a short
    /// machine-readable tag (`pipeline_fault`, `cleaner_pass_error`,
    /// `cleaner_panic`), `detail` the human-readable error text.
    /// Best-effort: returns `None` if the directory or file cannot be
    /// written.
    pub fn dump(&self, reason: &str, detail: &str, snapshot: &ObsSnapshot) -> Option<PathBuf> {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        let path = self.dir.join(format!("ld-flight-{pid}-{n}.json"));
        let mut o = json::Obj::new();
        o.str("reason", reason)
            .str("detail", detail)
            .u64("pid", u64::from(pid))
            .u64("dump_seq", n)
            .raw("snapshot", &snapshot.to_json());
        std::fs::create_dir_all(&self.dir).ok()?;
        std::fs::write(&path, o.finish()).ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_round_trips_through_the_parser() {
        let dir = std::env::temp_dir().join(format!("ld-flight-test-{}", std::process::id()));
        let rec = FlightRecorder::new(&dir);
        let snap = ObsSnapshot::default();
        let path = rec
            .dump("unit_test", "synthetic failure", &snap)
            .expect("dump into the temp directory");
        let body = std::fs::read_to_string(&path).unwrap();
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("reason").and_then(|r| r.as_str()), Some("unit_test"));
        assert_eq!(
            v.get("detail").and_then(|r| r.as_str()),
            Some("synthetic failure")
        );
        assert_eq!(
            v.get("pid").and_then(|p| p.as_u64()),
            Some(u64::from(std::process::id()))
        );
        let inner = v.get("snapshot").expect("snapshot key");
        ObsSnapshot::from_value(inner).expect("snapshot parses back");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn dump_into_unwritable_path_is_a_quiet_none() {
        // A file (not a directory) as the target: create_dir_all fails.
        let bogus = std::env::temp_dir().join(format!("ld-flight-file-{}", std::process::id()));
        std::fs::write(&bogus, b"occupied").unwrap();
        let rec = FlightRecorder::new(&bogus);
        assert!(rec
            .dump("unit_test", "should not panic", &ObsSnapshot::default())
            .is_none());
        std::fs::remove_file(&bogus).ok();
    }
}
