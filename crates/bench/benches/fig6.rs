//! Criterion version of Figure 6 at reduced scale: the five large-file
//! phases per version. The full-scale reproduction with virtual-clock
//! throughput is `cargo run -p ld-bench --bin fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use ld_bench::{BenchConfig, Version};
use ld_workload::{LargeFilePhase, LargeFileWorkload};

fn bench_fig6(c: &mut Criterion) {
    let cfg = BenchConfig {
        runs: 1,
        ..BenchConfig::quick()
    };
    let wl = LargeFileWorkload::tiny(2_000_000, 4096);
    let mut group = c.benchmark_group("fig6_large_file_2mb");
    group.sample_size(10);
    for version in [Version::Old, Version::New] {
        group.bench_function(version.label(), |b| {
            b.iter(|| {
                let mut fs = cfg.build_fs(version);
                let ino = wl.setup(&mut fs).unwrap();
                for phase in LargeFilePhase::ALL {
                    wl.run_phase(&mut fs, ino, phase).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig6
}
criterion_main!(benches);
