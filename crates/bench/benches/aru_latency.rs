//! Criterion version of the §5.3 ARU-latency experiment at reduced
//! scale. The full 500,000-iteration reproduction is
//! `cargo run -p ld-bench --bin aru_latency`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ld_bench::{BenchConfig, Version};
use ld_workload::AruLatencyWorkload;

fn bench_aru_latency(c: &mut Criterion) {
    let cfg = BenchConfig::quick();
    let mut group = c.benchmark_group("aru_latency");
    let count = 10_000u64;
    group.throughput(Throughput::Elements(count));
    group.sample_size(10);
    for version in [Version::Old, Version::New] {
        group.bench_function(format!("{}_x10000", version.label()), |b| {
            let wl = AruLatencyWorkload { count };
            b.iter(|| {
                let mut ld = cfg.build_ld(version);
                wl.run(&mut ld).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_aru_latency
}
criterion_main!(benches);
