//! Micro-benchmarks of the logical-disk hot paths: simple operations,
//! ARU begin/commit, shadow copy-on-write, and the predecessor search.

use criterion::{criterion_group, criterion_main, Criterion};
use ld_bench::{BenchConfig, Version};
use ld_core::{Ctx, Position};
use std::hint::black_box;

fn small_cfg() -> BenchConfig {
    BenchConfig {
        block_size: 4096,
        segment_bytes: 128 * 1024,
        capacity: 32 << 20,
        inode_count: 1024,
        cpu_slowdown: 0.0,
        runs: 1,
    }
}

fn bench_simple_ops(c: &mut Criterion) {
    let cfg = small_cfg();
    let mut group = c.benchmark_group("simple_ops");

    group.bench_function("write_4k", |b| {
        let mut ld = cfg.build_ld(Version::New);
        let list = ld.new_list(Ctx::Simple).unwrap();
        let blk = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
        let data = vec![7u8; 4096];
        b.iter(|| ld.write(Ctx::Simple, blk, black_box(&data)).unwrap());
    });

    group.bench_function("read_4k_committed", |b| {
        let mut ld = cfg.build_ld(Version::New);
        let list = ld.new_list(Ctx::Simple).unwrap();
        let blk = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
        ld.write(Ctx::Simple, blk, &vec![7u8; 4096]).unwrap();
        let mut buf = vec![0u8; 4096];
        b.iter(|| ld.read(Ctx::Simple, blk, black_box(&mut buf)).unwrap());
    });

    group.bench_function("alloc_free_block", |b| {
        let mut ld = cfg.build_ld(Version::New);
        let list = ld.new_list(Ctx::Simple).unwrap();
        b.iter(|| {
            let blk = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
            ld.delete_block(Ctx::Simple, blk).unwrap();
        });
    });
    group.finish();
}

fn bench_aru_paths(c: &mut Criterion) {
    let cfg = small_cfg();
    let mut group = c.benchmark_group("aru");

    group.bench_function("begin_end_empty", |b| {
        let mut ld = cfg.build_ld(Version::New);
        b.iter(|| {
            let aru = ld.begin_aru().unwrap();
            ld.end_aru(aru).unwrap();
        });
    });

    group.bench_function("begin_end_empty_sequential", |b| {
        let mut ld = cfg.build_ld(Version::Old);
        b.iter(|| {
            let aru = ld.begin_aru().unwrap();
            ld.end_aru(aru).unwrap();
        });
    });

    group.bench_function("shadow_write_and_commit", |b| {
        let mut ld = cfg.build_ld(Version::New);
        let list = ld.new_list(Ctx::Simple).unwrap();
        let blk = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
        let data = vec![3u8; 4096];
        b.iter(|| {
            let aru = ld.begin_aru().unwrap();
            ld.write(Ctx::Aru(aru), blk, &data).unwrap();
            ld.end_aru(aru).unwrap();
        });
    });
    group.finish();
}

fn bench_predecessor_search(c: &mut Criterion) {
    let cfg = small_cfg();
    let mut group = c.benchmark_group("predecessor_search");
    for len in [4usize, 64, 512] {
        group.bench_function(format!("delete_tail_of_{len}"), |b| {
            b.iter_batched(
                || {
                    let mut ld = cfg.build_ld(Version::New);
                    let list = ld.new_list(Ctx::Simple).unwrap();
                    let mut prev = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
                    for _ in 1..len {
                        prev = ld
                            .new_block(Ctx::Simple, list, Position::After(prev))
                            .unwrap();
                    }
                    (ld, prev)
                },
                |(mut ld, tail)| ld.delete_block(Ctx::Simple, tail).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simple_ops, bench_aru_paths, bench_predecessor_search
}
criterion_main!(benches);
