//! Micro-benchmarks of the logical-disk hot paths: simple operations,
//! ARU begin/commit, shadow copy-on-write, and the predecessor search.
//!
//! A plain `harness = false` runner: each benchmark is timed with
//! `std::time::Instant` over a fixed iteration count after a warm-up
//! pass, and reported as ns/iter (median of 5 samples).
//!
//! Usage: `cargo bench -p ld-bench` (add `-- <filter>` to run a subset).

use ld_bench::{BenchConfig, Version};
use ld_core::{Ctx, Lld, Position};
use ld_disk::{MemDisk, SimDisk};
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: usize = 5;

fn small_cfg() -> BenchConfig {
    BenchConfig {
        block_size: 4096,
        segment_bytes: 128 * 1024,
        capacity: 32 << 20,
        inode_count: 1024,
        cpu_slowdown: 0.0,
        runs: 1,
    }
}

/// Times `iters` runs of `f`, returning ns/iter (median of
/// [`SAMPLES`] samples, after one discarded warm-up sample).
fn time_ns_per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(SAMPLES);
    for sample in 0..=SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
        if sample > 0 {
            samples.push(ns);
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    samples[samples.len() / 2]
}

fn report(name: &str, filter: Option<&str>, iters: u32, f: impl FnMut()) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    let ns = time_ns_per_iter(iters, f);
    println!("{name:<40} {ns:>12.1} ns/iter   ({iters} iters x {SAMPLES} samples, median)");
}

fn bench_simple_ops(filter: Option<&str>) {
    let cfg = small_cfg();

    {
        let ld = cfg.build_ld(Version::New);
        let list = ld.new_list(Ctx::Simple).unwrap();
        let blk = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
        let data = vec![7u8; 4096];
        report("simple_ops/write_4k", filter, 2000, || {
            ld.write(Ctx::Simple, blk, black_box(&data)).unwrap();
        });
    }

    {
        let ld = cfg.build_ld(Version::New);
        let list = ld.new_list(Ctx::Simple).unwrap();
        let blk = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
        ld.write(Ctx::Simple, blk, &vec![7u8; 4096]).unwrap();
        let mut buf = vec![0u8; 4096];
        report("simple_ops/read_4k_committed", filter, 5000, || {
            ld.read(Ctx::Simple, blk, black_box(&mut buf)).unwrap();
        });
    }

    {
        let ld = cfg.build_ld(Version::New);
        let list = ld.new_list(Ctx::Simple).unwrap();
        report("simple_ops/alloc_free_block", filter, 2000, || {
            let blk = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
            ld.delete_block(Ctx::Simple, blk).unwrap();
        });
    }
}

fn bench_aru_paths(filter: Option<&str>) {
    let cfg = small_cfg();

    {
        let ld = cfg.build_ld(Version::New);
        report("aru/begin_end_empty", filter, 5000, || {
            let aru = ld.begin_aru().unwrap();
            ld.end_aru(aru).unwrap();
        });
    }

    {
        let ld = cfg.build_ld(Version::Old);
        report("aru/begin_end_empty_sequential", filter, 5000, || {
            let aru = ld.begin_aru().unwrap();
            ld.end_aru(aru).unwrap();
        });
    }

    {
        let ld = cfg.build_ld(Version::New);
        let list = ld.new_list(Ctx::Simple).unwrap();
        let blk = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
        let data = vec![3u8; 4096];
        report("aru/shadow_write_and_commit", filter, 1000, || {
            let aru = ld.begin_aru().unwrap();
            ld.write(Ctx::Aru(aru), blk, &data).unwrap();
            ld.end_aru(aru).unwrap();
        });
    }
}

fn bench_predecessor_search(filter: Option<&str>) {
    let cfg = small_cfg();
    for len in [4usize, 64, 512] {
        let name = format!("predecessor_search/delete_tail_of_{len}");
        if let Some(pat) = filter {
            if !name.contains(pat) {
                continue;
            }
        }
        // Each iteration consumes the list tail, so rebuild per sample:
        // time only the delete by accumulating elapsed time manually.
        let build = |cfg: &BenchConfig| -> (Lld<SimDisk<MemDisk>>, ld_core::BlockId) {
            let ld = cfg.build_ld(Version::New);
            let list = ld.new_list(Ctx::Simple).unwrap();
            let mut prev = ld.new_block(Ctx::Simple, list, Position::First).unwrap();
            for _ in 1..len {
                prev = ld
                    .new_block(Ctx::Simple, list, Position::After(prev))
                    .unwrap();
            }
            (ld, prev)
        };
        let iters = 50u32;
        let mut samples = Vec::with_capacity(SAMPLES);
        for sample in 0..=SAMPLES {
            let mut total_ns = 0u128;
            for _ in 0..iters {
                let (ld, tail) = build(&cfg);
                let start = Instant::now();
                ld.delete_block(Ctx::Simple, black_box(tail)).unwrap();
                total_ns += start.elapsed().as_nanos();
            }
            if sample > 0 {
                samples.push(total_ns as f64 / f64::from(iters));
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let ns = samples[samples.len() / 2];
        println!("{name:<40} {ns:>12.1} ns/iter   ({iters} iters x {SAMPLES} samples, median)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Cargo's bench profile passes `--bench`; anything else is a filter.
    let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
    let filter = filter.as_deref();

    bench_simple_ops(filter);
    bench_aru_paths(filter);
    bench_predecessor_search(filter);
}
