//! Criterion version of Figure 5 at reduced scale: the small-file
//! create/read/delete cycle per version. The full-scale reproduction
//! with virtual-clock throughput is `cargo run -p ld-bench --bin fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use ld_bench::{BenchConfig, Version};
use ld_workload::SmallFileWorkload;

fn bench_fig5(c: &mut Criterion) {
    let cfg = BenchConfig {
        runs: 1,
        ..BenchConfig::quick()
    };
    let wl = SmallFileWorkload::tiny(200, 1024);
    let mut group = c.benchmark_group("fig5_small_files_x200");
    group.sample_size(10);
    for version in Version::ALL {
        group.bench_function(version.label().replace(", ", "_"), |b| {
            b.iter(|| {
                let mut fs = cfg.build_fs(version);
                wl.create_and_write(&mut fs).unwrap();
                wl.read_all(&mut fs).unwrap();
                wl.delete_all(&mut fs).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fig5
}
criterion_main!(benches);
