//! Multi-threaded throughput: N OS threads share one logical disk
//! through its `&self` interface and commit disjoint ARUs with
//! synchronous durability, so concurrent callers batch in the
//! group-commit stage.
//!
//! The paper's prototype was single-threaded (§6 names a
//! multi-threaded implementation as future work); this experiment
//! measures what the shared-handle implementation adds: wall-clock
//! ops/s at 1, 2, 4, and 8 threads, and how many durability callers
//! each group-commit batch absorbed.
//!
//! Unlike the §5 experiments, throughput here is *wall-clock*: thread
//! scaling is a property of the implementation's locking, not of the
//! 1996 timing model. The disk is a [`LatencyDisk`] over memory — data
//! moves at memory speed but each write barrier charges a realistic
//! wall-clock cost, which is the window group commit batches in.
//!
//! Two workload variants stress the sharded mapping layer directly
//! (both commit lazily — `sync_every: 0` — so they are lock-bound, not
//! barrier-bound):
//!
//! * `--disjoint`: each thread builds private lists, which spread
//!   round-robin across the map shards — concurrent ARUs take disjoint
//!   shard locks and should scale with threads;
//! * `--hot`: every thread rewrites blocks of one shared list, all of
//!   which live in a single map shard — the serialization floor that
//!   sharding cannot remove.
//!
//! `--shards N` overrides the map shard count (as does the
//! `LD_ARU_MAP_SHARDS` environment variable), so `--disjoint --shards 1`
//! vs `--disjoint --shards 8` isolates what sharding buys.
//!
//! Usage: `mt_throughput [--quick] [--json] [--threads 1,2,4,8]
//! [--arus N] [--disjoint | --hot] [--shards N]`

use ld_bench::{BenchConfig, Version};
use ld_core::obs::json::{Arr, Obj};
use ld_core::Lld;
use ld_disk::{LatencyDisk, MemDisk};
use ld_workload::{MtMode, MtWorkload};
use std::time::{Duration, Instant};

/// Wall-clock cost charged per write barrier. A [`SimDisk`] barrier
/// returns in nanoseconds of real time, so concurrent durability
/// callers would almost never overlap a leader's flush; a realistic
/// barrier cost is what gives group commit a window to batch in.
///
/// [`SimDisk`]: ld_disk::SimDisk
const BARRIER_COST: Duration = Duration::from_micros(500);

#[derive(Debug)]
struct Run {
    threads: usize,
    arus: u64,
    blocks: u64,
    ops: u64,
    wall_secs: f64,
    ops_per_sec: f64,
    flush_batches: u64,
    flush_batch_callers: u64,
    flush_batch_max: u64,
    scoped_mutations: u64,
    full_mutations: u64,
    cross_shard_commits: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = BenchConfig::from_args(&args);
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");

    let mut thread_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut total_arus: usize = if quick { 400 } else { 4000 };
    // Default: the original sync-commit workload (group-commit study).
    // --disjoint / --hot switch to the lazy-commit shard studies.
    let mut mode = MtMode::Disjoint;
    let mut sync_every = 1;
    let mut label = "private lists, end_aru_sync";
    let mut shards_override: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                if let Some(v) = it.next() {
                    let parsed: Vec<usize> =
                        v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                    if !parsed.is_empty() {
                        thread_counts = parsed;
                    }
                }
            }
            "--arus" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    total_arus = v;
                }
            }
            "--disjoint" => {
                mode = MtMode::Disjoint;
                sync_every = 0;
                label = "disjoint lists, lazy commit";
            }
            "--hot" => {
                mode = MtMode::HotShard;
                sync_every = 0;
                label = "one hot shard, lazy commit";
            }
            "--shards" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    shards_override = Some(v);
                }
            }
            _ => {}
        }
    }

    let mut ld_cfg = cfg.ld_config(Version::New);
    if let Some(n) = shards_override {
        ld_cfg.map_shards = n;
    }
    let map_shards = ld_cfg.map_shards;

    let mut runs: Vec<Run> = Vec::new();
    let mut last_obs = None;
    for &threads in &thread_counts {
        let device = LatencyDisk::new(MemDisk::new(cfg.capacity), BARRIER_COST);
        let ld = Lld::format(device, &ld_cfg).expect("format");
        let wl = MtWorkload {
            threads,
            arus_per_thread: total_arus.max(threads) / threads,
            blocks_per_aru: 2,
            sync_every,
            mode,
            seed: 42,
        };
        let start = Instant::now();
        let report = wl.run(&ld).expect("workload");
        let wall = start.elapsed().as_secs_f64();
        let stats = ld.stats();
        runs.push(Run {
            threads,
            arus: report.arus_committed,
            blocks: report.blocks_written,
            ops: report.ops,
            wall_secs: wall,
            ops_per_sec: report.ops as f64 / wall.max(1e-9),
            flush_batches: stats.flush_batches,
            flush_batch_callers: stats.flush_batch_callers,
            flush_batch_max: stats.flush_batch_max,
            scoped_mutations: stats.scoped_mutations,
            full_mutations: stats.full_mutations,
            cross_shard_commits: stats.cross_shard_commits,
        });
        last_obs = Some(ld.obs_snapshot());
    }

    if json {
        let mut arr = Arr::new();
        for r in &runs {
            arr.push_raw(
                &Obj::new()
                    .u64("threads", r.threads as u64)
                    .u64("arus", r.arus)
                    .u64("blocks", r.blocks)
                    .u64("ops", r.ops)
                    .f64("wall_secs", r.wall_secs)
                    .f64("ops_per_sec", r.ops_per_sec)
                    .u64("flush_batches", r.flush_batches)
                    .u64("flush_batch_callers", r.flush_batch_callers)
                    .u64("flush_batch_max", r.flush_batch_max)
                    .u64("scoped_mutations", r.scoped_mutations)
                    .u64("full_mutations", r.full_mutations)
                    .u64("cross_shard_commits", r.cross_shard_commits)
                    .finish(),
            );
        }
        let mut out = Obj::new();
        out.u64("total_arus", total_arus as u64)
            .str("workload", label)
            .u64("map_shards", map_shards as u64)
            .raw("runs", &arr.finish());
        if let Some(snap) = &last_obs {
            out.raw("obs", &snap.to_json());
        }
        println!("{}", out.finish());
        return;
    }

    println!(
        "Multi-threaded throughput: {total_arus} ARUs, 2 blocks each ({label}), {map_shards} map shard(s)"
    );
    println!(
        "  threads |      ops |  wall (s) |      ops/s | batches | callers | max batch |  scoped |    full | x-shard"
    );
    for r in &runs {
        println!(
            "  {:>7} | {:>8} | {:>9.3} | {:>10.0} | {:>7} | {:>7} | {:>9} | {:>7} | {:>7} | {:>7}",
            r.threads,
            r.ops,
            r.wall_secs,
            r.ops_per_sec,
            r.flush_batches,
            r.flush_batch_callers,
            r.flush_batch_max,
            r.scoped_mutations,
            r.full_mutations,
            r.cross_shard_commits
        );
    }
    if let Some(r) = runs.iter().find(|r| r.threads >= 4) {
        println!(
            "  group commit at {} threads: {:.2} callers per barrier (max {})",
            r.threads,
            r.flush_batch_callers as f64 / r.flush_batches.max(1) as f64,
            r.flush_batch_max
        );
    }
}
