//! Multi-threaded throughput: N OS threads share one logical disk
//! through its `&self` interface and commit disjoint ARUs with
//! synchronous durability, so concurrent callers batch in the
//! group-commit stage.
//!
//! The paper's prototype was single-threaded (§6 names a
//! multi-threaded implementation as future work); this experiment
//! measures what the shared-handle implementation adds: wall-clock
//! ops/s at 1, 2, 4, and 8 threads, and how many durability callers
//! each group-commit batch absorbed.
//!
//! Unlike the §5 experiments, throughput here is *wall-clock*: thread
//! scaling is a property of the implementation's locking, not of the
//! 1996 timing model. The disk is a [`LatencyDisk`] over memory — data
//! moves at memory speed but each write barrier charges a realistic
//! wall-clock cost, which is the window group commit batches in.
//!
//! Two workload variants stress the sharded mapping layer directly
//! (both commit lazily — `sync_every: 0` — so they are lock-bound, not
//! barrier-bound):
//!
//! * `--disjoint`: each thread builds private lists, which spread
//!   round-robin across the map shards — concurrent ARUs take disjoint
//!   shard locks and should scale with threads;
//! * `--hot`: every thread rewrites blocks of one shared list, all of
//!   which live in a single map shard — the serialization floor that
//!   sharding cannot remove.
//!
//! `--shards N` overrides the map shard count (as does the
//! `LD_ARU_MAP_SHARDS` environment variable), so `--disjoint --shards 1`
//! vs `--disjoint --shards 8` isolates what sharding buys.
//!
//! A third study, `--clean-pressure`, pits the inline segment cleaner
//! against the background `cleanerd`: an overwrite-churn workload
//! (each thread rewrites its own pre-allocated blocks, syncing every
//! 4th commit) on a deliberately tiny device wraps the log continuously,
//! so the cleaner runs throughout. The same workload is run twice per
//! thread count — inline cleaning (stalls every foreground thread for
//! the length of a full pass, checkpoint barrier included) vs
//! `cleanerd` (passes run on their own thread; the foreground only
//! pauses for short relocation windows) — and the report is foreground
//! ops/s for each plus the background/inline speedup.
//!
//! A fourth study, `--pipeline`, measures the pipelined device layer:
//! the same sync-commit workload runs twice per thread count — device
//! writes and barriers on the caller's thread vs writes streamed
//! through the pipeline's I/O thread ([`PipelinedDisk`]) — and the
//! report is ops/s for each plus the pipelined/sync speedup. With the
//! pipeline, the group-commit leader hands leadership off between the
//! segment seal and the barrier wait, so the next batch's seal writes
//! reach the device while the previous barrier is still in flight.
//! This study charges a per-byte transfer cost on top of the barrier
//! cost (on the `latency` device): the synchronous path pays
//! `W + F` per batch, the pipelined path streams each batch's data
//! blocks to the device as they are placed — overlapping them with the
//! previous batch's in-flight barrier — and pays `max(W, F)`.
//!
//! `--device {mem,latency,file}` selects the backing device for any
//! study: `latency` (default) charges a realistic wall-clock barrier
//! cost over memory, `mem` is raw memory (lock-bound), and `file` is a
//! real temporary file with positioned I/O and `fdatasync` barriers.
//!
//! Usage: `mt_throughput [--quick] [--json] [--threads 1,2,4,8]
//! [--arus N] [--disjoint | --hot | --clean-pressure | --pipeline]
//! [--device mem|latency|file] [--shards N]
//! [--trace-out FILE] [--sampler-out FILE]`
//!
//! `--trace-out FILE` enlarges the trace ring and writes the last run's
//! commit trace as Chrome Trace Event Format; `--sampler-out FILE`
//! turns the background metrics sampler on (200 Hz unless
//! `LD_ARU_METRICS_HZ` overrides it) and writes the last run's time
//! series as JSON Lines. Both apply to the default group-commit study.
//!
//! [`PipelinedDisk`]: ld_disk::PipelinedDisk

use ld_bench::{BenchConfig, Version};
use ld_core::obs::json::{Arr, Obj};
use ld_core::{CleanerConfig, Lld, LldConfig};
use ld_disk::{BlockDevice, FileDisk, LatencyDisk, MemDisk};
use ld_workload::{MtMode, MtWorkload};
use std::time::{Duration, Instant};

/// Wall-clock cost charged per write barrier. A [`SimDisk`] barrier
/// returns in nanoseconds of real time, so concurrent durability
/// callers would almost never overlap a leader's flush; a realistic
/// barrier cost is what gives group commit a window to batch in.
///
/// [`SimDisk`]: ld_disk::SimDisk
const BARRIER_COST: Duration = Duration::from_micros(500);

/// Wall-clock cost charged per media read in the `--clean-pressure`
/// runs (the other runs never read the device on the hot path). This
/// is what the cleaner pays per relocated block: the inline cleaner
/// pays it on the foreground path under full locks, while `cleanerd`
/// prefetches victim data with no locks held, overlapping the reads
/// with foreground commits.
const READ_COST: Duration = Duration::from_micros(250);

/// Modeled sequential write bandwidth for the `--pipeline` runs on the
/// `latency` device, in bytes/second. Charging writes per *byte* (not
/// per call) keeps the cost honest for both paths: the synchronous
/// seal's one big segment write and the pipelined path's streamed
/// blocks plus tiny summary/header writes pay the same total transfer
/// time for the same bytes. At 48 MiB/s a group-commit batch's data
/// transfer takes on the order of half the [`PIPELINE_BARRIER_COST`]
/// barrier, the balanced regime for double buffering: the I/O thread's
/// streaming of batch *k+1* roughly fills batch *k*'s barrier wait, so
/// the synchronous path spends `W + F` per batch while the pipelined
/// path approaches `max(W, F)`.
const WRITE_BANDWIDTH: u64 = 48 << 20;

/// Barrier cost for the `--pipeline` comparison. The 500 µs
/// [`BARRIER_COST`] of the group-commit study models a cheap cache
/// flush; a *durable* barrier — a SCSI `SYNCHRONIZE CACHE` on the
/// paper's disks, `FLUSH` on a modern SSD — costs milliseconds, and
/// that is the cost an async segment writer exists to hide. At 2 ms
/// against 64 MiB/s transfer, a group-commit batch's write time and
/// half the barrier time are comparable, so the double-buffered
/// pipeline can keep both its in-flight barrier slots busy while the
/// I/O thread streams the next batch. Override with
/// `LD_BENCH_BARRIER_US` (and `LD_BENCH_WRITE_BW`) to sweep the model.
const PIPELINE_BARRIER_COST: Duration = Duration::from_millis(2);

#[derive(Debug)]
struct Run {
    threads: usize,
    arus: u64,
    blocks: u64,
    ops: u64,
    wall_secs: f64,
    ops_per_sec: f64,
    flush_batches: u64,
    flush_batch_callers: u64,
    flush_batch_max: u64,
    scoped_mutations: u64,
    full_mutations: u64,
    cross_shard_commits: u64,
    pipeline_stalls: u64,
    inflight_barriers: u64,
}

/// The backing device for a run, selected with `--device`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeviceKind {
    /// Raw memory: no per-op cost, isolates lock behavior.
    Mem,
    /// Memory plus a wall-clock barrier charge (the default): the
    /// window group commit and the pipeline batch in.
    Latency,
    /// A real temporary file: positioned I/O, `fdatasync` barriers.
    File,
}

impl DeviceKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "mem" => Some(DeviceKind::Mem),
            "latency" => Some(DeviceKind::Latency),
            "file" => Some(DeviceKind::File),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            DeviceKind::Mem => "mem",
            DeviceKind::Latency => "latency",
            DeviceKind::File => "file",
        }
    }
}

/// Runs one workload measurement on a fresh device of `kind`. The
/// device types differ, so the workload body is generic and the match
/// happens here once.
fn measure_run(
    kind: DeviceKind,
    capacity: u64,
    write_bandwidth: u64,
    barrier_cost: Duration,
    cfg: &LldConfig,
    wl: &MtWorkload,
) -> (Run, ld_core::ObsSnapshot, String) {
    fn go<D: BlockDevice + 'static>(
        device: D,
        cfg: &LldConfig,
        wl: &MtWorkload,
    ) -> (Run, ld_core::ObsSnapshot, String) {
        let ld = Lld::format(device, cfg).expect("format");
        let start = Instant::now();
        let report = wl.run(&ld).expect("workload");
        let wall = start.elapsed().as_secs_f64();
        // Close the sampler series with a final data point (a no-op
        // row when sampling is off).
        ld.sample_now();
        let stats = ld.stats();
        let run = Run {
            threads: wl.threads,
            arus: report.arus_committed,
            blocks: report.blocks_written,
            ops: report.ops,
            wall_secs: wall,
            ops_per_sec: report.ops as f64 / wall.max(1e-9),
            flush_batches: stats.flush_batches,
            flush_batch_callers: stats.flush_batch_callers,
            flush_batch_max: stats.flush_batch_max,
            scoped_mutations: stats.scoped_mutations,
            full_mutations: stats.full_mutations,
            cross_shard_commits: stats.cross_shard_commits,
            pipeline_stalls: stats.pipeline_stalls,
            inflight_barriers: stats.inflight_barriers,
        };
        let jsonl = ld.sampler_jsonl();
        (run, ld.obs_snapshot(), jsonl)
    }
    match kind {
        DeviceKind::Mem => go(MemDisk::new(capacity), cfg, wl),
        DeviceKind::Latency => go(
            LatencyDisk::new(MemDisk::new(capacity), barrier_cost)
                .with_write_bandwidth(write_bandwidth),
            cfg,
            wl,
        ),
        DeviceKind::File => {
            let path = std::env::temp_dir().join(format!(
                "ld-mt-{}-{}t-{}.img",
                std::process::id(),
                wl.threads,
                if cfg.pipeline { "pipe" } else { "sync" }
            ));
            let run = go(
                FileDisk::create(&path, capacity).expect("create file disk"),
                cfg,
                wl,
            );
            let _ = std::fs::remove_file(&path);
            run
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = BenchConfig::from_args(&args);
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");

    let mut thread_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut total_arus: usize = if quick { 400 } else { 4000 };
    // Default: the original sync-commit workload (group-commit study).
    // --disjoint / --hot switch to the lazy-commit shard studies.
    let mut mode = MtMode::Disjoint;
    let mut sync_every = 1;
    let mut label = "private lists, end_aru_sync";
    let mut shards_override: Option<usize> = None;
    let mut clean_pressure = false;
    let mut pipeline_compare = false;
    let mut device_kind = DeviceKind::Latency;
    let mut trace_out: Option<String> = None;
    let mut sampler_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--clean-pressure" => clean_pressure = true,
            "--pipeline" => pipeline_compare = true,
            "--trace-out" => trace_out = it.next().cloned(),
            "--sampler-out" => sampler_out = it.next().cloned(),
            "--device" => {
                if let Some(k) = it.next().and_then(|v| DeviceKind::parse(v)) {
                    device_kind = k;
                }
            }
            "--threads" => {
                if let Some(v) = it.next() {
                    let parsed: Vec<usize> =
                        v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                    if !parsed.is_empty() {
                        thread_counts = parsed;
                    }
                }
            }
            "--arus" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    total_arus = v;
                }
            }
            "--disjoint" => {
                mode = MtMode::Disjoint;
                sync_every = 0;
                label = "disjoint lists, lazy commit";
            }
            "--hot" => {
                mode = MtMode::HotShard;
                sync_every = 0;
                label = "one hot shard, lazy commit";
            }
            "--shards" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    shards_override = Some(v);
                }
            }
            _ => {}
        }
    }

    if clean_pressure {
        let arus = if args.iter().any(|a| a == "--arus") {
            total_arus
        } else if quick {
            400
        } else {
            2000
        };
        run_clean_pressure(&thread_counts, arus, shards_override, json);
        return;
    }

    let mut ld_cfg = cfg.ld_config(Version::New);
    if let Some(n) = shards_override {
        ld_cfg.map_shards = n;
    }
    if trace_out.is_some() {
        // Large enough to hold every stage event of the run, so the
        // exported trace is complete rather than the ring's tail.
        ld_cfg.obs.ring_capacity = 1 << 16;
    }
    if sampler_out.is_some() && ld_cfg.metrics_hz.is_none() {
        ld_cfg.metrics_hz = Some(200.0);
    }
    let map_shards = ld_cfg.map_shards;

    if pipeline_compare {
        run_pipeline_compare(
            &thread_counts,
            total_arus,
            device_kind,
            cfg.capacity,
            &ld_cfg,
            json,
        );
        return;
    }

    let mut runs: Vec<Run> = Vec::new();
    let mut last_obs = None;
    let mut last_jsonl = String::new();
    for &threads in &thread_counts {
        let wl = MtWorkload {
            threads,
            arus_per_thread: total_arus.max(threads) / threads,
            blocks_per_aru: 2,
            sync_every,
            mode,
            seed: 42,
        };
        let (run, obs, jsonl) =
            measure_run(device_kind, cfg.capacity, 0, BARRIER_COST, &ld_cfg, &wl);
        runs.push(run);
        last_obs = Some(obs);
        last_jsonl = jsonl;
    }

    // Sidecar exports of the last (highest thread count) run.
    if let (Some(path), Some(obs)) = (&trace_out, &last_obs) {
        std::fs::write(path, obs.to_chrome_trace()).expect("write --trace-out");
        eprintln!(
            "wrote {} trace events ({} dropped) to {path}",
            obs.events.len(),
            obs.dropped_events
        );
    }
    if let Some(path) = &sampler_out {
        std::fs::write(path, &last_jsonl).expect("write --sampler-out");
        eprintln!(
            "wrote {} sampler rows to {path}",
            last_jsonl.lines().count()
        );
    }

    if json {
        let mut arr = Arr::new();
        for r in &runs {
            arr.push_raw(
                &Obj::new()
                    .u64("threads", r.threads as u64)
                    .u64("arus", r.arus)
                    .u64("blocks", r.blocks)
                    .u64("ops", r.ops)
                    .f64("wall_secs", r.wall_secs)
                    .f64("ops_per_sec", r.ops_per_sec)
                    .u64("flush_batches", r.flush_batches)
                    .u64("flush_batch_callers", r.flush_batch_callers)
                    .u64("flush_batch_max", r.flush_batch_max)
                    .u64("scoped_mutations", r.scoped_mutations)
                    .u64("full_mutations", r.full_mutations)
                    .u64("cross_shard_commits", r.cross_shard_commits)
                    .u64("pipeline_stalls", r.pipeline_stalls)
                    .u64("inflight_barriers", r.inflight_barriers)
                    .finish(),
            );
        }
        let mut out = Obj::new();
        out.u64("total_arus", total_arus as u64)
            .str("workload", label)
            .str("device", device_kind.label())
            .u64("map_shards", map_shards as u64)
            .raw("runs", &arr.finish());
        if let Some(snap) = &last_obs {
            out.raw("obs", &snap.to_json());
        }
        println!("{}", out.finish());
        return;
    }

    println!(
        "Multi-threaded throughput: {total_arus} ARUs, 2 blocks each ({label}), \
         {map_shards} map shard(s), {} device",
        device_kind.label()
    );
    println!(
        "  threads |      ops |  wall (s) |      ops/s | batches | callers | max batch |  scoped |    full | x-shard"
    );
    for r in &runs {
        println!(
            "  {:>7} | {:>8} | {:>9.3} | {:>10.0} | {:>7} | {:>7} | {:>9} | {:>7} | {:>7} | {:>7}",
            r.threads,
            r.ops,
            r.wall_secs,
            r.ops_per_sec,
            r.flush_batches,
            r.flush_batch_callers,
            r.flush_batch_max,
            r.scoped_mutations,
            r.full_mutations,
            r.cross_shard_commits
        );
    }
    if let Some(r) = runs.iter().find(|r| r.threads >= 4) {
        println!(
            "  group commit at {} threads: {:.2} callers per barrier (max {})",
            r.threads,
            r.flush_batch_callers as f64 / r.flush_batches.max(1) as f64,
            r.flush_batch_max
        );
    }
}

/// Runs the sync-commit workload twice per thread count — barriers on
/// the caller's thread vs the pipelined device layer — and reports
/// ops/s for each plus the speedup. This is the experiment behind
/// `BENCH_pipeline.json` in CI.
fn run_pipeline_compare(
    thread_counts: &[usize],
    total_arus: usize,
    kind: DeviceKind,
    capacity: u64,
    base_cfg: &LldConfig,
    json: bool,
) {
    let bw = std::env::var("LD_BENCH_WRITE_BW")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(WRITE_BANDWIDTH);
    let barrier = std::env::var("LD_BENCH_BARRIER_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_micros)
        .unwrap_or(PIPELINE_BARRIER_COST);
    // Every `end_aru_sync` seals a mostly-empty segment, so a log sized
    // for steady state would wrap several times and put *both* modes
    // inside a cleaner storm — the run would measure relocation, not
    // the device path (cleaning cost has its own experiment,
    // `--clean-pressure`). Size the log to hold every seal instead; the
    // configured capacity is kept as metadata-and-slack margin.
    let capacity = capacity + (total_arus as u64 + 2) * base_cfg.segment_bytes as u64;
    let mut rows: Vec<(Run, Run)> = Vec::new();
    for &threads in thread_counts {
        let wl = MtWorkload {
            threads,
            arus_per_thread: total_arus.max(threads) / threads,
            // Write-heavy commits (32 KiB of data each): segment
            // transfer is a first-order cost, as with the paper's
            // 0.5 MB segments — the regime an async segment writer
            // exists for. With 2-block commits the barrier dominates
            // and group commit alone already amortizes it.
            blocks_per_aru: 8,
            sync_every: 1,
            mode: MtMode::Disjoint,
            seed: 42,
        };
        let sync_cfg = LldConfig {
            pipeline: false,
            ..base_cfg.clone()
        };
        let pipe_cfg = LldConfig {
            pipeline: true,
            ..base_cfg.clone()
        };
        let (sync_run, _, _) = measure_run(kind, capacity, bw, barrier, &sync_cfg, &wl);
        let (pipe_run, _, _) = measure_run(kind, capacity, bw, barrier, &pipe_cfg, &wl);
        rows.push((sync_run, pipe_run));
    }

    if json {
        let mut arr = Arr::new();
        for (s, p) in &rows {
            arr.push_raw(
                &Obj::new()
                    .u64("threads", s.threads as u64)
                    .u64("arus", s.arus)
                    .f64("sync_ops_per_sec", s.ops_per_sec)
                    .f64("pipelined_ops_per_sec", p.ops_per_sec)
                    .f64("speedup", p.ops_per_sec / s.ops_per_sec.max(1e-9))
                    .u64("sync_flush_batches", s.flush_batches)
                    .u64("pipelined_flush_batches", p.flush_batches)
                    .u64("sync_batch_max", s.flush_batch_max)
                    .u64("pipelined_batch_max", p.flush_batch_max)
                    .u64("pipeline_stalls", p.pipeline_stalls)
                    .u64("inflight_barriers_max", p.inflight_barriers)
                    .finish(),
            );
        }
        let mut out = Obj::new();
        out.str("experiment", "pipeline_throughput")
            .str("device", kind.label())
            .str("workload", "private lists, end_aru_sync")
            .u64("total_arus", total_arus as u64)
            .raw("runs", &arr.finish());
        println!("{}", out.finish());
        return;
    }

    println!(
        "Pipelined device layer: {total_arus} ARUs, 8 blocks each, end_aru_sync, {} device",
        kind.label()
    );
    println!(
        "  threads | sync ops/s | pipelined ops/s | speedup | sync batches | pipe batches | inflight | stalls"
    );
    for (s, p) in &rows {
        println!(
            "  {:>7} | {:>10.0} | {:>15.0} | {:>6.2}x | {:>12} | {:>12} | {:>8} | {:>6}",
            s.threads,
            s.ops_per_sec,
            p.ops_per_sec,
            p.ops_per_sec / s.ops_per_sec.max(1e-9),
            s.flush_batches,
            p.flush_batches,
            p.inflight_barriers,
            p.pipeline_stalls
        );
    }
    if let Some((s, p)) = rows.iter().find(|(s, _)| s.threads >= 4) {
        println!(
            "  at {} threads the pipelined device sustains {:.2}x the synchronous ops/s",
            s.threads,
            p.ops_per_sec / s.ops_per_sec.max(1e-9)
        );
    }
}

/// One inline-vs-background measurement at a fixed thread count.
#[derive(Debug)]
struct PressureRun {
    threads: usize,
    inline_ops_per_sec: f64,
    background_ops_per_sec: f64,
    speedup: f64,
    inline_cleaner_runs: u64,
    inline_relocated: u64,
    background_passes: u64,
    background_relocated: u64,
    backpressure_stalls: u64,
}

/// Runs the overwrite-churn workload on a tiny device twice per thread
/// count — inline cleaner, then `cleanerd` — and reports foreground
/// ops/s for each. The device holds only 16 segments of 64 KiB while
/// each group-committed sync fills roughly one segment, so the log
/// wraps every handful of commits and cleaning cost is a first-order
/// term in the foreground wall clock.
fn run_clean_pressure(
    thread_counts: &[usize],
    total_arus: usize,
    shards_override: Option<usize>,
    json: bool,
) {
    let one = |threads: usize, background: bool| -> (f64, ld_core::LldStats) {
        let mut cfg = LldConfig {
            block_size: 512,
            segment_bytes: 8 * 512,
            max_blocks: Some(512),
            max_lists: Some(64),
            cleaner: CleanerConfig {
                background,
                // Clean early and far ahead (the churn consumes slots
                // fast), and throttle the foreground only when nearly
                // out of slots.
                target_free_segments: 8,
                backpressure_free_segments: 1,
                ..CleanerConfig::default()
            },
            ..LldConfig::default()
        };
        if let Some(n) = shards_override {
            cfg.map_shards = n;
        }
        // Superblock + both checkpoint areas + 16 segments.
        let cap = 512 + 2 * 64 * 1024 + 16 * 8 * 512;
        // Media reads cost real time here: relocation is read-dominated,
        // and `cleanerd` issues its victim reads with no locks held
        // (prefetch), so that cost overlaps the foreground — while the
        // inline cleaner pays it on the foreground path.
        let device =
            LatencyDisk::new(MemDisk::new(cap as u64), BARRIER_COST).with_read_delay(READ_COST);
        let ld = Lld::format(device, &cfg).expect("format");
        // Cold data topping the live set up to ~80% of the data slots
        // (the churn working set is 8 blocks per thread): cold blocks
        // are never rewritten, so every log wrap must *relocate* them —
        // without them churn segments die wholesale and cleaning
        // degenerates to reclaiming dead segments, which costs nothing
        // worth moving off the foreground path.
        let cold_blocks = 88usize.saturating_sub(8 * threads);
        {
            use ld_core::{Ctx, Position};
            let list = ld.new_list(Ctx::Simple).expect("cold list");
            let mut prev = None;
            let data = vec![0xCD_u8; 512];
            for _ in 0..cold_blocks {
                let pos = match prev {
                    None => Position::First,
                    Some(p) => Position::After(p),
                };
                let b = ld.new_block(Ctx::Simple, list, pos).expect("cold block");
                ld.write(Ctx::Simple, b, &data).expect("cold write");
                prev = Some(b);
            }
            ld.flush().expect("cold flush");
        }
        let wl = MtWorkload {
            threads,
            arus_per_thread: total_arus.max(threads) / threads,
            blocks_per_aru: 2,
            sync_every: 4,
            mode: MtMode::Churn,
            seed: 42,
        };
        let start = Instant::now();
        let report = wl.run(&ld).expect("workload");
        let wall = start.elapsed().as_secs_f64();
        (report.ops as f64 / wall.max(1e-9), ld.stats())
    };

    let mut runs: Vec<PressureRun> = Vec::new();
    for &threads in thread_counts {
        let (inline_ops, inline_stats) = one(threads, false);
        let (bg_ops, bg_stats) = one(threads, true);
        runs.push(PressureRun {
            threads,
            inline_ops_per_sec: inline_ops,
            background_ops_per_sec: bg_ops,
            speedup: bg_ops / inline_ops.max(1e-9),
            inline_cleaner_runs: inline_stats.cleaner_runs,
            inline_relocated: inline_stats.blocks_relocated,
            background_passes: bg_stats.cleaner_passes,
            background_relocated: bg_stats.cleaner_blocks_relocated,
            backpressure_stalls: bg_stats.backpressure_stalls,
        });
    }

    if json {
        let mut arr = Arr::new();
        for r in &runs {
            arr.push_raw(
                &Obj::new()
                    .u64("threads", r.threads as u64)
                    .f64("inline_ops_per_sec", r.inline_ops_per_sec)
                    .f64("background_ops_per_sec", r.background_ops_per_sec)
                    .f64("speedup", r.speedup)
                    .u64("inline_cleaner_runs", r.inline_cleaner_runs)
                    .u64("inline_relocated", r.inline_relocated)
                    .u64("background_passes", r.background_passes)
                    .u64("background_relocated", r.background_relocated)
                    .u64("backpressure_stalls", r.backpressure_stalls)
                    .finish(),
            );
        }
        let mut out = Obj::new();
        out.u64("total_arus", total_arus as u64)
            .str("workload", "overwrite churn, sync every 4th commit")
            .raw("runs", &arr.finish());
        println!("{}", out.finish());
        return;
    }

    println!(
        "Clean pressure: {total_arus} ARUs of overwrite churn (2 blocks each, sync every 4th) \
         on a 16-segment device"
    );
    println!(
        "  threads | inline ops/s | cleanerd ops/s | speedup | inline runs/reloc | bg passes/reloc | stalls"
    );
    for r in &runs {
        println!(
            "  {:>7} | {:>12.0} | {:>14.0} | {:>6.2}x | {:>11} | {:>9} | {:>6}",
            r.threads,
            r.inline_ops_per_sec,
            r.background_ops_per_sec,
            r.speedup,
            format!("{}/{}", r.inline_cleaner_runs, r.inline_relocated),
            format!("{}/{}", r.background_passes, r.background_relocated),
            r.backpressure_stalls
        );
    }
    if let Some(r) = runs.iter().find(|r| r.threads >= 4) {
        println!(
            "  at {} threads the background cleaner sustains {:.2}x the inline foreground ops/s",
            r.threads, r.speedup
        );
    }
}
