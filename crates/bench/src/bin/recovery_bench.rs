//! Restart latency: what sharded checkpoint snapshots and parallel
//! suffix replay buy at recovery time.
//!
//! Two studies, both on an in-memory device so the numbers isolate the
//! recovery *computation* (CRC checks, record replay, table rebuild)
//! rather than media latency:
//!
//! 1. **Flat restart** — a fixed working set takes a growing log of
//!    overwrites (1×, 2×, 4×, 8× the base update count) before the
//!    checkpoint, while the post-checkpoint suffix stays fixed. With a
//!    covering checkpoint, restart reads the snapshot slabs and
//!    replays only the fixed suffix, so wall time stays roughly flat;
//!    the same history recovered *without* a checkpoint replays every
//!    update and grows linearly with log length. The gap is what the
//!    checkpoint subsystem is for.
//!
//! 2. **Parallel speedup** — a long-log image (a checkpointed working
//!    set followed by a long suffix of small update ARUs overwriting
//!    it) is recovered at 1, 2, 4, and 8 worker threads
//!    (`LldConfig::recovery_threads`). Segment scan and slab decode
//!    fan out across the pool, and the replay coordinator routes each
//!    update to the partition owning its block, so restart scales
//!    until the serial fraction (routing plus finalize) dominates.
//!
//! The consistency check (`check_on_recovery`) is off for every run:
//! it is an optional post-recovery audit, and its full-map walk would
//! dilute the phase timings this experiment is about.
//!
//! Usage: `recovery_bench [--quick] [--json]`

use ld_core::obs::json::{Arr, Obj};
use ld_core::{BlockId, Ctx, Lld, LldConfig, Position, RecoveryReport};
use ld_disk::MemDisk;
use std::time::Instant;

const BS: usize = 512;

fn config() -> LldConfig {
    LldConfig {
        block_size: BS,
        segment_bytes: 64 * BS,
        check_on_recovery: false,
        ..LldConfig::default()
    }
}

/// Appends `arus` committed ARUs, each building one private list of
/// `blocks_per` written blocks — the record mix is almost entirely
/// routable (allocations, writes, same-list links), which is the
/// common case for a crashed busy disk. Returns the created blocks.
fn fill(ld: &Lld<MemDisk>, arus: u64, blocks_per: u64) -> Vec<BlockId> {
    let data = vec![0xA5u8; BS];
    let mut blocks = Vec::with_capacity((arus * blocks_per) as usize);
    for _ in 0..arus {
        let aru = ld.begin_aru().expect("begin_aru");
        let list = ld.new_list(Ctx::Aru(aru)).expect("new_list");
        let mut pred = None;
        for _ in 0..blocks_per {
            let pos = match pred {
                None => Position::First,
                Some(p) => Position::After(p),
            };
            let b = ld.new_block(Ctx::Aru(aru), list, pos).expect("new_block");
            ld.write(Ctx::Aru(aru), b, &data).expect("write");
            pred = Some(b);
            blocks.push(b);
        }
        ld.end_aru(aru).expect("end_aru");
    }
    blocks
}

/// Appends `arus` committed update ARUs, each overwriting `writes_per`
/// blocks of the working set (deterministic LCG pick) — the
/// overwrite-heavy long-log shape a hot disk leaves behind.
fn update(ld: &Lld<MemDisk>, working_set: &[BlockId], arus: u64, writes_per: u64) {
    let data = vec![0x5Au8; BS];
    let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
    for _ in 0..arus {
        let aru = ld.begin_aru().expect("begin_aru");
        for _ in 0..writes_per {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = working_set[(lcg >> 33) as usize % working_set.len()];
            ld.write(Ctx::Aru(aru), b, &data).expect("write");
        }
        ld.end_aru(aru).expect("end_aru");
    }
}

/// Builds an image holding a working set (`ws_arus` fill ARUs), a
/// `pre` update-ARU history, an optional covering checkpoint, then a
/// `suffix` update-ARU tail, and crashes (no flush beyond what commit
/// already made durable).
fn build_image(
    ws_arus: u64,
    blocks_per: u64,
    pre: u64,
    suffix: u64,
    writes_per: u64,
    checkpoint: bool,
) -> Vec<u8> {
    let ld = Lld::format(MemDisk::new(96 << 20), &config()).expect("format");
    let working_set = fill(&ld, ws_arus, blocks_per);
    update(&ld, &working_set, pre, writes_per);
    if checkpoint {
        ld.checkpoint().expect("checkpoint");
    }
    update(&ld, &working_set, suffix, writes_per);
    ld.into_device().into_image()
}

/// Recovers a copy of `image` with `threads` workers; wall time plus
/// the phase breakdown from the report. The image copy happens before
/// the clock starts — it is test scaffolding, not recovery work.
fn recover_once(image: &[u8], threads: usize) -> (f64, RecoveryReport) {
    let cfg = LldConfig {
        recovery_threads: threads,
        ..config()
    };
    let device = MemDisk::from_image(image.to_vec());
    let start = Instant::now();
    let (ld, report) = Lld::recover_with(device, &cfg).expect("recover");
    let wall = start.elapsed().as_secs_f64();
    drop(ld);
    (wall, report)
}

/// Median-of-3 recovery wall time (recovery is short; MemDisk runs are
/// noisy enough to bother).
fn recover_med(image: &[u8], threads: usize) -> (f64, RecoveryReport) {
    let mut runs: Vec<(f64, RecoveryReport)> =
        (0..3).map(|_| recover_once(image, threads)).collect();
    runs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    runs.swap_remove(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let blocks_per: u64 = 6;
    let ws_arus: u64 = if quick { 150 } else { 400 };
    let writes_per: u64 = 4;
    let base_pre: u64 = if quick { 750 } else { 3000 };
    let suffix: u64 = if quick { 150 } else { 600 };

    // ---- Study 1: restart stays flat as pre-checkpoint history grows
    let mut flat = Arr::new();
    let mut flat_rows: Vec<(u64, f64, f64, RecoveryReport)> = Vec::new();
    for mult in [1u64, 2, 4, 8] {
        let pre = base_pre * mult;
        let with_ckpt = build_image(ws_arus, blocks_per, pre, suffix, writes_per, true);
        let without_ckpt = build_image(ws_arus, blocks_per, pre, suffix, writes_per, false);
        let (ckpt_wall, report) = recover_med(&with_ckpt, 1);
        let (raw_wall, _) = recover_med(&without_ckpt, 1);
        flat.push_raw(
            &Obj::new()
                .u64("pre_ckpt_update_arus", pre)
                .u64("suffix_update_arus", suffix)
                .u64("checkpoint_seq", report.checkpoint_seq)
                .u64("snap_shards", report.snap_shards as u64)
                .u64("segments_replayed", report.segments_replayed as u64)
                .f64("ckpt_restart_ms", ckpt_wall * 1e3)
                .f64("no_ckpt_restart_ms", raw_wall * 1e3)
                .f64("snapshot_load_ms", report.snapshot_load_ns as f64 / 1e6)
                .f64("scan_ms", report.scan_ns as f64 / 1e6)
                .f64("replay_ms", report.replay_ns as f64 / 1e6)
                .f64("finalize_ms", report.finalize_ns as f64 / 1e6)
                .finish(),
        );
        flat_rows.push((pre, ckpt_wall, raw_wall, report));
    }

    // ---- Study 2: restart speedup across recovery_threads ------------
    let upd_arus: u64 = if quick { 3000 } else { 12000 };
    let image = build_image(ws_arus, blocks_per, 0, upd_arus, writes_per, true);
    let mut speedup = Arr::new();
    let mut spd_rows: Vec<(usize, f64, f64, RecoveryReport)> = Vec::new();
    let mut base_replay = 0f64;
    let mut base_wall = 0f64;
    for threads in [1usize, 2, 4, 8] {
        let (wall, report) = recover_med(&image, threads);
        let replay_s = report.replay_ns as f64 / 1e9;
        if threads == 1 {
            base_replay = replay_s;
            base_wall = wall;
        }
        speedup.push_raw(
            &Obj::new()
                .u64("threads", threads as u64)
                .u64("records_applied", report.records_applied)
                .u64("segments_replayed", report.segments_replayed as u64)
                .f64("restart_ms", wall * 1e3)
                .f64("replay_ms", replay_s * 1e3)
                .f64("scan_ms", report.scan_ns as f64 / 1e6)
                .f64("snapshot_load_ms", report.snapshot_load_ns as f64 / 1e6)
                .f64("finalize_ms", report.finalize_ns as f64 / 1e6)
                .f64("replay_speedup", base_replay / replay_s.max(1e-9))
                .f64("restart_speedup", base_wall / wall.max(1e-9))
                .finish(),
        );
        spd_rows.push((threads, wall, replay_s, report));
    }

    if json {
        let mut out = Arr::new();
        out.push_raw(
            &Obj::new()
                .str("experiment", "recovery_flat_restart")
                .str("device", "mem")
                .u64("host_cores", host_cores as u64)
                .u64("working_set_arus", ws_arus)
                .u64("blocks_per_aru", blocks_per)
                .u64("writes_per_aru", writes_per)
                .u64("recovery_threads", 1)
                .raw("runs", &flat.finish())
                .finish(),
        );
        out.push_raw(
            &Obj::new()
                .str("experiment", "recovery_parallel_speedup")
                .str("device", "mem")
                .u64("host_cores", host_cores as u64)
                .u64("working_set_arus", ws_arus)
                .u64("update_arus", upd_arus)
                .u64("writes_per_aru", writes_per)
                .raw("runs", &speedup.finish())
                .finish(),
        );
        println!("{}", out.finish());
        return;
    }

    println!(
        "Restart latency (mem device, {ws_arus}x{blocks_per}-block working set, \
         {writes_per} writes/update ARU, {host_cores} host cores)"
    );
    if host_cores < 4 {
        println!(
            "note: host has {host_cores} core(s); parallel legs measure coordination \
             overhead, not speedup"
        );
    }
    println!();
    println!("Flat restart: fixed {suffix}-update-ARU suffix, growing pre-checkpoint history");
    println!(
        "  {:>12} {:>14} {:>16} {:>10} {:>10}",
        "pre ARUs", "ckpt restart", "no-ckpt restart", "load ms", "replay ms"
    );
    for (pre, ckpt_wall, raw_wall, report) in &flat_rows {
        println!(
            "  {:>12} {:>11.2} ms {:>13.2} ms {:>10.2} {:>10.2}",
            pre,
            ckpt_wall * 1e3,
            raw_wall * 1e3,
            report.snapshot_load_ns as f64 / 1e6,
            report.replay_ns as f64 / 1e6
        );
    }
    println!();
    println!(
        "Parallel restart: {upd_arus} update ARUs ({writes_per} writes each) above the checkpoint"
    );
    println!(
        "  {:>8} {:>12} {:>12} {:>10} {:>14} {:>15}",
        "threads", "restart ms", "replay ms", "scan ms", "replay speedup", "restart speedup"
    );
    for (threads, wall, replay_s, report) in &spd_rows {
        println!(
            "  {:>8} {:>12.2} {:>12.2} {:>10.2} {:>13.2}x {:>14.2}x",
            threads,
            wall * 1e3,
            replay_s * 1e3,
            report.scan_ns as f64 / 1e6,
            base_replay / replay_s.max(1e-9),
            base_wall / wall.max(1e-9)
        );
    }
}
