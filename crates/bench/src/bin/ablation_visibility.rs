//! Ablation: the three read-visibility options of §3.3 under the
//! small-file workload. The paper implements only option 3 (own-shadow,
//! full isolation) and argues it is the most complex; this ablation
//! measures what the weaker options would cost/save on the same
//! workload.
//!
//! Usage: `ablation_visibility [--quick] [--runs N] [--cpu-slowdown X]`

use ld_bench::{measure, median, BenchConfig, Version};
use ld_core::{Lld, LldConfig, ReadVisibility};
use ld_disk::{DiskModel, MemDisk, SimDisk};
use ld_minixfs::MinixFs;
use ld_workload::SmallFileWorkload;
use std::sync::Arc;

fn label(v: ReadVisibility) -> &'static str {
    match v {
        ReadVisibility::AnyShadow => "option 1: any-shadow",
        ReadVisibility::Committed => "option 2: committed",
        ReadVisibility::OwnShadow => "option 3: own-shadow",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = BenchConfig::from_args(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let wl = if quick {
        SmallFileWorkload::tiny(500, 1024)
    } else {
        SmallFileWorkload::tiny(5000, 1024)
    };

    println!("Read-visibility ablation (section 3.3) - small-file workload, `new` version");
    println!(
        "  {} files x {} bytes, virtual clock (CPU x {}), {} run(s), median",
        wl.file_count, wl.file_size, cfg.cpu_slowdown, cfg.runs
    );
    println!();
    println!(
        "  {:<22} {:>10} {:>10} {:>10}   (files/second)",
        "visibility", "C+W", "R", "D"
    );

    for vis in [
        ReadVisibility::AnyShadow,
        ReadVisibility::Committed,
        ReadVisibility::OwnShadow,
    ] {
        // Option 2 (committed-only reads) cannot support a client that
        // read-modify-writes shared blocks *inside* an ARU: the second
        // update of an inode-table block within one ARU would read the
        // stale committed version and lose the first — exactly the
        // disadvantage §3.3 cites when arguing for option 3. The file
        // system therefore runs without ARU bracketing under option 2.
        let mut fs_cfg = cfg.fs_config(Version::New);
        if vis == ReadVisibility::Committed {
            fs_cfg.use_arus = false;
        }
        let mut cw = Vec::new();
        let mut rd = Vec::new();
        let mut del = Vec::new();
        let mut obs = None;
        for _ in 0..cfg.runs.max(1) {
            let ld_cfg = LldConfig {
                visibility: vis,
                ..cfg.ld_config(Version::New)
            };
            let sim = SimDisk::new(MemDisk::new(cfg.capacity), DiskModel::hp_c3010());
            let ld = Lld::format(sim, &ld_cfg).expect("format");
            let mut fs = MinixFs::format(ld, fs_cfg).expect("fs format");
            fs.ld().device().clock().reset();
            let clock = Arc::clone(fs.ld().device().clock());
            let (_, t_cw) =
                measure(&clock, cfg.cpu_slowdown, || wl.create_and_write(&mut fs)).expect("cw");
            let (_, t_rd) = measure(&clock, cfg.cpu_slowdown, || wl.read_all(&mut fs)).expect("rd");
            let (_, t_del) =
                measure(&clock, cfg.cpu_slowdown, || wl.delete_all(&mut fs)).expect("del");
            cw.push(wl.file_count as f64 / t_cw.virtual_secs());
            rd.push(wl.file_count as f64 / t_rd.virtual_secs());
            del.push(wl.file_count as f64 / t_del.virtual_secs());
            obs = Some(fs.ld().obs_snapshot());
        }
        println!(
            "  {:<22} {:>10.1} {:>10.1} {:>10.1}{}",
            label(vis),
            median(&mut cw),
            median(&mut rd),
            median(&mut del),
            if vis == ReadVisibility::Committed {
                "   (no ARU bracketing: see note)"
            } else {
                ""
            }
        );
        if let Some(snap) = obs {
            println!(
                "  {:<22} arus committed {}, CoW records {}, segments sealed {}",
                "", snap.lld.arus_committed, snap.lld.shadow_cow_records, snap.lld.segments_sealed
            );
        }
    }
    println!();
    println!("  note: option 2 cannot support a read-modify-write client inside ARUs");
    println!("  (its reads never see the ARU's own shadow state), so the file system");
    println!("  runs without ARU bracketing there — empirically confirming the");
    println!("  paper's argument for option 3. Options 1 and 3 differ in lookup-path");
    println!("  overhead under this single-threaded workload.");
}
