//! The §5.3 ARU-latency experiment: start and end an empty ARU 500,000
//! times. The paper reports 78.47 µs per ARU, with 24 segments written
//! (the commit records in the segment summaries).
//!
//! Usage: `aru_latency [--quick] [--cpu-slowdown X] [--json]`

use ld_bench::{measure, BenchConfig, Version};
use ld_core::obs::json::Obj;
use ld_workload::AruLatencyWorkload;
use std::sync::Arc;

#[derive(Debug)]
struct Report {
    arus: u64,
    virtual_us_per_aru: f64,
    wall_us_per_aru: f64,
    disk_secs: f64,
    segments_written: u64,
    summary_bytes: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = BenchConfig::from_args(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");

    let wl = if quick {
        AruLatencyWorkload { count: 50_000 }
    } else {
        AruLatencyWorkload::paper()
    };

    let ld = cfg.build_ld(Version::New);
    let clock = Arc::clone(ld.device().clock());
    let (res, timing) = measure(&clock, cfg.cpu_slowdown, || wl.run(&ld)).expect("run");
    let stats = ld.stats();
    let snap = ld.obs_snapshot();

    let report = Report {
        arus: res.arus,
        virtual_us_per_aru: timing.virtual_secs() * 1e6 / res.arus as f64,
        wall_us_per_aru: timing.wall.as_secs_f64() * 1e6 / res.arus as f64,
        disk_secs: timing.disk.as_secs_f64(),
        segments_written: stats.segments_sealed,
        summary_bytes: stats.summary_bytes,
    };
    if json {
        println!(
            "{}",
            Obj::new()
                .u64("arus", report.arus)
                .f64("virtual_us_per_aru", report.virtual_us_per_aru)
                .f64("wall_us_per_aru", report.wall_us_per_aru)
                .f64("disk_secs", report.disk_secs)
                .u64("segments_written", report.segments_written)
                .u64("summary_bytes", report.summary_bytes)
                .raw("obs", &snap.to_json())
                .finish()
        );
        return;
    }
    println!(
        "ARU latency experiment (section 5.3): {} BeginARU/EndARU pairs",
        report.arus
    );
    println!(
        "  virtual latency per ARU: {:.2} us  (paper: 78.47 us)",
        report.virtual_us_per_aru
    );
    println!(
        "  raw CPU latency per ARU: {:.3} us",
        report.wall_us_per_aru
    );
    println!(
        "  segments written: {}  (paper: 24; commit records only)",
        report.segments_written
    );
    println!(
        "  summary bytes emitted: {} ({} per commit record)",
        report.summary_bytes,
        report.summary_bytes / report.arus.max(1)
    );
    if let Some((_, h)) = snap.histograms.iter().find(|(n, _)| n == "end_aru") {
        println!(
            "  end_aru wall latency: p50 {} ns  p99 {} ns  max {} ns  ({} samples)",
            h.p50(),
            h.p99(),
            h.max,
            h.count
        );
    }
}
