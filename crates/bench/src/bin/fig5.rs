//! Figure 5: small-file throughput (files/second) for creating+writing,
//! reading, and deleting 10,000 1-KByte and 1,000 10-KByte files, for
//! the `old`, `new`, and `new, delete` versions of MinixLLD.
//!
//! Usage: `fig5 [--quick] [--runs N] [--cpu-slowdown X] [--json]`

use ld_bench::{
    measure, median, percent_slower, print_versions_table, BenchConfig, PhaseTiming, Version,
};
use ld_core::obs::json::{Arr, Obj};
use ld_workload::SmallFileWorkload;
use std::sync::Arc;

#[derive(Debug)]
struct PhaseResult {
    files_per_sec: f64,
    wall_secs: f64,
    disk_secs: f64,
}

impl PhaseResult {
    fn to_json(&self) -> String {
        Obj::new()
            .f64("files_per_sec", self.files_per_sec)
            .f64("wall_secs", self.wall_secs)
            .f64("disk_secs", self.disk_secs)
            .finish()
    }
}

#[derive(Debug)]
struct VersionRow {
    version: &'static str,
    create_write: PhaseResult,
    read: PhaseResult,
    delete: PhaseResult,
    /// Observability snapshot of the last run, pre-rendered as JSON.
    obs_json: String,
}

#[derive(Debug)]
struct Experiment {
    label: String,
    file_count: usize,
    file_size: usize,
    rows: Vec<VersionRow>,
}

fn phase_result(files: usize, t: &PhaseTiming) -> PhaseResult {
    PhaseResult {
        files_per_sec: files as f64 / t.virtual_secs(),
        wall_secs: t.wall.as_secs_f64(),
        disk_secs: t.disk.as_secs_f64(),
    }
}

fn run_version(cfg: &BenchConfig, version: Version, wl: &SmallFileWorkload) -> VersionRow {
    let mut cw = Vec::new();
    let mut rd = Vec::new();
    let mut del = Vec::new();
    let mut last: Option<(PhaseTiming, PhaseTiming, PhaseTiming)> = None;
    let mut obs_json = String::from("null");
    // Iteration 0 is a discarded warm-up (code paths, allocator, caches).
    for run in 0..=cfg.runs.max(1) {
        let mut fs = cfg.build_fs(version);
        let clock = Arc::clone(fs.ld().device().clock());
        let (_, t_cw) =
            measure(&clock, cfg.cpu_slowdown, || wl.create_and_write(&mut fs)).expect("create");
        let (_, t_rd) = measure(&clock, cfg.cpu_slowdown, || wl.read_all(&mut fs)).expect("read");
        let (_, t_del) =
            measure(&clock, cfg.cpu_slowdown, || wl.delete_all(&mut fs)).expect("delete");
        if run == 0 {
            continue;
        }
        cw.push(wl.file_count as f64 / t_cw.virtual_secs());
        rd.push(wl.file_count as f64 / t_rd.virtual_secs());
        del.push(wl.file_count as f64 / t_del.virtual_secs());
        last = Some((t_cw, t_rd, t_del));
        let mut snap = fs.ld().obs_snapshot();
        snap.fs_ops = fs.stats().as_named_counters();
        obs_json = snap.to_json();
    }
    let (t_cw, t_rd, t_del) = last.expect("at least one run");
    let mut row = VersionRow {
        version: version.label(),
        create_write: phase_result(wl.file_count, &t_cw),
        read: phase_result(wl.file_count, &t_rd),
        delete: phase_result(wl.file_count, &t_del),
        obs_json,
    };
    row.create_write.files_per_sec = median(&mut cw);
    row.read.files_per_sec = median(&mut rd);
    row.delete.files_per_sec = median(&mut del);
    row
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = BenchConfig::from_args(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");

    let experiments = if quick {
        vec![
            ("1,000 1 KByte files", SmallFileWorkload::tiny(1000, 1024)),
            (
                "200 10 KByte files",
                SmallFileWorkload::tiny(200, 10 * 1024),
            ),
        ]
    } else {
        vec![
            ("10,000 1 KByte files", SmallFileWorkload::paper_1k()),
            ("1,000 10 KByte files", SmallFileWorkload::paper_10k()),
        ]
    };

    if !json {
        print_versions_table();
        println!(
            "Figure 5 - small-file throughput in files/second (C+W = create and write, R = read, D = delete)"
        );
        println!(
            "virtual clock = modeled HP C3010 disk time + CPU time x {} ({} run(s) per cell, median)",
            cfg.cpu_slowdown, cfg.runs
        );
        println!();
    }

    let mut report = Vec::new();
    for (label, wl) in experiments {
        let rows: Vec<VersionRow> = Version::ALL
            .iter()
            .map(|&v| run_version(&cfg, v, &wl))
            .collect();
        if !json {
            println!("{label}");
            println!(
                "  {:<13} {:>10} {:>10} {:>10}   (files/second)",
                "version", "C+W", "R", "D"
            );
            let old_cw = rows[0].create_write.files_per_sec;
            let old_d = rows[0].delete.files_per_sec;
            for row in &rows {
                println!(
                    "  {:<13} {:>10.1} {:>10.1} {:>10.1}   [C+W {:+.1}%  D {:+.1}% vs old]",
                    row.version,
                    row.create_write.files_per_sec,
                    row.read.files_per_sec,
                    row.delete.files_per_sec,
                    percent_slower(old_cw, row.create_write.files_per_sec),
                    percent_slower(old_d, row.delete.files_per_sec),
                );
            }
            println!(
                "  (raw last-run C+W: old wall {:.3}s disk {:.3}s | new wall {:.3}s disk {:.3}s)",
                rows[0].create_write.wall_secs,
                rows[0].create_write.disk_secs,
                rows[1].create_write.wall_secs,
                rows[1].create_write.disk_secs
            );
            println!();
        }
        report.push(Experiment {
            label: label.to_string(),
            file_count: wl.file_count,
            file_size: wl.file_size,
            rows,
        });
    }
    if json {
        let mut arr = Arr::new();
        for exp in &report {
            let mut rows = Arr::new();
            for row in &exp.rows {
                rows.push_raw(
                    &Obj::new()
                        .str("version", row.version)
                        .raw("create_write", &row.create_write.to_json())
                        .raw("read", &row.read.to_json())
                        .raw("delete", &row.delete.to_json())
                        .raw("obs", &row.obs_json)
                        .finish(),
                );
            }
            arr.push_raw(
                &Obj::new()
                    .str("label", &exp.label)
                    .u64("file_count", exp.file_count as u64)
                    .u64("file_size", exp.file_size as u64)
                    .raw("rows", &rows.finish())
                    .finish(),
            );
        }
        println!("{}", arr.finish());
    }
}
