//! Figure 6: large-file throughput (MByte/second) for the five phases
//! write1, read1, write2, read2, read3 over a 78.125-MByte file, for the
//! `old` and `new` versions of MinixLLD.
//!
//! Usage: `fig6 [--quick] [--runs N] [--cpu-slowdown X] [--json]`

use ld_bench::{measure, median, percent_slower, print_versions_table, BenchConfig, Version};
use ld_core::obs::json::{Arr, Obj};
use ld_workload::{LargeFilePhase, LargeFileWorkload};
use std::sync::Arc;

#[derive(Debug)]
struct VersionRow {
    version: &'static str,
    /// MByte/second per phase, in `LargeFilePhase::ALL` order.
    mb_per_sec: Vec<f64>,
    wall_secs: Vec<f64>,
    disk_secs: Vec<f64>,
    /// Observability snapshot of the last run, pre-rendered as JSON.
    obs_json: String,
}

impl VersionRow {
    fn to_json(&self) -> String {
        let floats = |vals: &[f64]| {
            let mut a = Arr::new();
            for &v in vals {
                a.push_raw(&if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                });
            }
            a.finish()
        };
        Obj::new()
            .str("version", self.version)
            .raw("mb_per_sec", &floats(&self.mb_per_sec))
            .raw("wall_secs", &floats(&self.wall_secs))
            .raw("disk_secs", &floats(&self.disk_secs))
            .raw("obs", &self.obs_json)
            .finish()
    }
}

fn run_version(cfg: &BenchConfig, version: Version, wl: &LargeFileWorkload) -> VersionRow {
    let mb = wl.size as f64 / 1e6;
    let mut per_phase: Vec<Vec<f64>> = vec![Vec::new(); LargeFilePhase::ALL.len()];
    let mut walls = vec![0.0; 5];
    let mut disks = vec![0.0; 5];
    let mut obs_json = String::from("null");
    // Iteration 0 is a discarded warm-up.
    for run in 0..=cfg.runs.max(1) {
        let mut fs = cfg.build_fs(version);
        let clock = Arc::clone(fs.ld().device().clock());
        let ino = wl.setup(&mut fs).expect("setup");
        for (i, phase) in LargeFilePhase::ALL.into_iter().enumerate() {
            let (_, t) = measure(&clock, cfg.cpu_slowdown, || {
                wl.run_phase(&mut fs, ino, phase)
            })
            .expect("phase");
            if run == 0 {
                continue;
            }
            per_phase[i].push(mb / t.virtual_secs());
            walls[i] = t.wall.as_secs_f64();
            disks[i] = t.disk.as_secs_f64();
        }
        if run > 0 {
            let mut snap = fs.ld().obs_snapshot();
            snap.fs_ops = fs.stats().as_named_counters();
            obs_json = snap.to_json();
        }
    }
    VersionRow {
        version: version.label(),
        mb_per_sec: per_phase.iter_mut().map(|v| median(v)).collect(),
        wall_secs: walls,
        disk_secs: disks,
        obs_json,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = BenchConfig::from_args(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");

    let wl = if quick {
        LargeFileWorkload::tiny(8_000_000, 4096)
    } else {
        LargeFileWorkload::paper()
    };

    let rows: Vec<VersionRow> = [Version::Old, Version::New]
        .iter()
        .map(|&v| run_version(&cfg, v, &wl))
        .collect();

    if json {
        let mut arr = Arr::new();
        for row in &rows {
            arr.push_raw(&row.to_json());
        }
        println!("{}", arr.finish());
        return;
    }
    print_versions_table();
    println!(
        "Figure 6 - large-file throughput in MByte/second ({:.3} MByte file, {} run(s), median)",
        wl.size as f64 / 1e6,
        cfg.runs
    );
    println!(
        "virtual clock = modeled HP C3010 disk time + CPU time x {}",
        cfg.cpu_slowdown
    );
    println!();
    print!("  {:<13}", "version");
    for phase in LargeFilePhase::ALL {
        print!(" {:>8}", phase.label());
    }
    println!("   (MByte/second)");
    for row in &rows {
        print!("  {:<13}", row.version);
        for v in &row.mb_per_sec {
            print!(" {v:>8.3}");
        }
        println!();
    }
    println!();
    print!("  percent-difference (old vs new):");
    for (i, phase) in LargeFilePhase::ALL.into_iter().enumerate() {
        print!(
            " {}={:+.1}%",
            phase.label(),
            percent_slower(rows[0].mb_per_sec[i], rows[1].mb_per_sec[i])
        );
    }
    println!();
    println!(
        "  (raw last-run write1: old wall {:.3}s disk {:.3}s | new wall {:.3}s disk {:.3}s)",
        rows[0].wall_secs[0], rows[0].disk_secs[0], rows[1].wall_secs[0], rows[1].disk_secs[0]
    );
}
