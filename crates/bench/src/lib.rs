//! Benchmark harness regenerating the paper's evaluation (§5).
//!
//! Every experiment compares the MinixLLD versions of Table 1:
//!
//! | label         | logical disk        | file system                         |
//! |---------------|---------------------|-------------------------------------|
//! | `old`         | sequential ARUs     | no ARU bracketing, per-block delete |
//! | `new`         | concurrent ARUs     | ARUs, per-block delete              |
//! | `new, delete` | concurrent ARUs     | ARUs, whole-list delete             |
//!
//! ## Timing model
//!
//! The paper timed a 70 MHz SPARC-5/70 driving an HP C3010 disk. Here
//! every experiment runs on [`SimDisk`], which charges modeled service
//! time (seek + rotation + transfer, HP C3010 profile) to a virtual
//! clock, while the harness measures the real CPU time of the same run
//! and charges it to the same clock scaled by a configurable **CPU
//! slowdown** (default [`DEFAULT_CPU_SLOWDOWN`]) that restores a
//! 1996-era CPU:disk balance. Both components are reported separately,
//! so the raw measurements are always visible. Relative old/new results
//! come from genuinely executing both code paths over identical
//! operation streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ld_core::{ConcurrencyMode, Lld, LldConfig, ReadVisibility};
use ld_disk::{DiskModel, MemDisk, SimDisk, VirtualClock};
use ld_minixfs::{DeletePolicy, FsConfig, MinixFs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The file system type every benchmark drives.
pub type BenchFs = MinixFs<Lld<SimDisk<MemDisk>>>;

/// Default CPU slowdown: roughly a modern core vs. a 70 MHz
/// microSPARC-II on pointer-heavy integer code.
pub const DEFAULT_CPU_SLOWDOWN: f64 = 400.0;

/// The three MinixLLD versions of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// The original MinixLLD: sequential-ARU logical disk, no ARU
    /// bracketing in the file system.
    Old,
    /// Concurrent ARUs, original per-block file deletion.
    New,
    /// Concurrent ARUs with the improved whole-list file deletion.
    NewDelete,
}

impl Version {
    /// All versions, in the paper's presentation order.
    pub const ALL: [Version; 3] = [Version::Old, Version::New, Version::NewDelete];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Version::Old => "old",
            Version::New => "new",
            Version::NewDelete => "new, delete",
        }
    }
}

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Block size in bytes (the paper: 4 KByte).
    pub block_size: usize,
    /// Segment size in bytes (the paper: 0.5 MByte).
    pub segment_bytes: usize,
    /// Device capacity in bytes (the paper: a 400 MByte partition plus
    /// metadata overhead).
    pub capacity: u64,
    /// Inodes available to the file system.
    pub inode_count: u32,
    /// CPU slowdown factor for the virtual clock.
    pub cpu_slowdown: f64,
    /// Repetitions per measurement (the paper averaged 10).
    pub runs: usize,
}

impl BenchConfig {
    /// The paper's full-scale configuration: ~100,000 × 4 KByte data
    /// blocks (400 MByte) in 0.5 MByte segments.
    pub fn paper() -> Self {
        BenchConfig {
            block_size: 4096,
            segment_bytes: 512 * 1024,
            capacity: 460 << 20,
            inode_count: 16 * 1024,
            cpu_slowdown: DEFAULT_CPU_SLOWDOWN,
            runs: 5,
        }
    }

    /// A reduced configuration for quick runs and CI.
    pub fn quick() -> Self {
        BenchConfig {
            block_size: 4096,
            segment_bytes: 128 * 1024,
            capacity: 96 << 20,
            inode_count: 4096,
            cpu_slowdown: DEFAULT_CPU_SLOWDOWN,
            runs: 1,
        }
    }

    /// Applies `--quick`, `--runs N`, and `--cpu-slowdown X` style
    /// command-line arguments (shared by all bench binaries).
    #[must_use]
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = if args.iter().any(|a| a == "--quick") {
            BenchConfig::quick()
        } else {
            BenchConfig::paper()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--runs" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        cfg.runs = v;
                    }
                }
                "--cpu-slowdown" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        cfg.cpu_slowdown = v;
                    }
                }
                _ => {}
            }
        }
        cfg
    }

    /// The logical-disk configuration for `version`.
    pub fn ld_config(&self, version: Version) -> LldConfig {
        LldConfig {
            block_size: self.block_size,
            segment_bytes: self.segment_bytes,
            concurrency: match version {
                Version::Old => ConcurrencyMode::Sequential,
                _ => ConcurrencyMode::Concurrent,
            },
            visibility: ReadVisibility::OwnShadow,
            ..LldConfig::default()
        }
    }

    /// The file-system configuration for `version`.
    pub fn fs_config(&self, version: Version) -> FsConfig {
        FsConfig {
            use_arus: !matches!(version, Version::Old),
            delete_policy: match version {
                Version::NewDelete => DeletePolicy::WholeList,
                _ => DeletePolicy::PerBlock,
            },
            inode_count: self.inode_count,
        }
    }

    /// Builds a fresh simulated file system for `version`, with the
    /// virtual clock zeroed after formatting (format cost is excluded
    /// from measurements, as in the paper).
    ///
    /// # Panics
    ///
    /// Panics if formatting fails (configuration bugs, not runtime
    /// conditions).
    pub fn build_fs(&self, version: Version) -> BenchFs {
        let sim = SimDisk::new(MemDisk::new(self.capacity), DiskModel::hp_c3010());
        let ld = Lld::format(sim, &self.ld_config(version)).expect("format");
        let fs = MinixFs::format(ld, self.fs_config(version)).expect("fs format");
        fs.ld().device().clock().reset();
        fs.ld().device().stats().reset();
        fs
    }

    /// Builds a fresh bare logical disk for `version` (for experiments
    /// that bypass the file system, like the ARU-latency run).
    ///
    /// # Panics
    ///
    /// Panics if formatting fails.
    pub fn build_ld(&self, version: Version) -> Lld<SimDisk<MemDisk>> {
        let sim = SimDisk::new(MemDisk::new(self.capacity), DiskModel::hp_c3010());
        let ld = Lld::format(sim, &self.ld_config(version)).expect("format");
        ld.device().clock().reset();
        ld.device().stats().reset();
        ld
    }
}

/// One measured phase: real CPU time plus modeled disk time.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTiming {
    /// Real (wall-clock) CPU time of the phase.
    pub wall: Duration,
    /// Modeled disk service time charged during the phase.
    pub disk: Duration,
    /// CPU slowdown used for the virtual total.
    pub cpu_slowdown: f64,
}

impl PhaseTiming {
    /// Virtual elapsed time in seconds: disk service time plus scaled
    /// CPU time.
    pub fn virtual_secs(&self) -> f64 {
        self.disk.as_secs_f64() + self.wall.as_secs_f64() * self.cpu_slowdown
    }
}

/// Measures one phase of work: captures the virtual-clock delta and the
/// real elapsed time around `f`. The harness controls measurement noise
/// structurally instead (pre-faulted device memory, a discarded warm-up
/// iteration, medians over repeated runs).
///
/// # Errors
///
/// Propagates whatever the phase returns.
pub fn measure<T, E>(
    clock: &Arc<VirtualClock>,
    cpu_slowdown: f64,
    f: impl FnOnce() -> Result<T, E>,
) -> Result<(T, PhaseTiming), E> {
    let disk_before = clock.now();
    let start = Instant::now();
    let out = f()?;
    let wall = start.elapsed();
    let disk = clock.now().saturating_sub(disk_before);
    Ok((
        out,
        PhaseTiming {
            wall,
            disk,
            cpu_slowdown,
        },
    ))
}

/// Percent difference of throughputs: positive = `new` is slower (the
/// paper's "percent-difference").
pub fn percent_slower(old_throughput: f64, new_throughput: f64) -> f64 {
    if old_throughput == 0.0 {
        return 0.0;
    }
    (old_throughput - new_throughput) / old_throughput * 100.0
}

/// Median of a slice (the harness's robust average over runs).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of no runs");
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    values[values.len() / 2]
}

/// Prints Table 1 (the version matrix) as a header for a report.
pub fn print_versions_table() {
    println!("Table 1 - MinixLLD versions used to determine concurrency overhead");
    println!("  old          the original MinixLLD (sequential ARUs, no bracketing)");
    println!("  new          concurrent ARUs; create/delete bracketed in ARUs");
    println!("  new, delete  as `new`, with improved whole-list file deletion");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_map_to_table_1() {
        let cfg = BenchConfig::quick();
        let old = cfg.fs_config(Version::Old);
        assert!(!old.use_arus);
        assert_eq!(old.delete_policy, DeletePolicy::PerBlock);
        assert_eq!(
            cfg.ld_config(Version::Old).concurrency,
            ConcurrencyMode::Sequential
        );
        let new = cfg.fs_config(Version::New);
        assert!(new.use_arus);
        assert_eq!(new.delete_policy, DeletePolicy::PerBlock);
        let nd = cfg.fs_config(Version::NewDelete);
        assert_eq!(nd.delete_policy, DeletePolicy::WholeList);
        assert_eq!(Version::NewDelete.label(), "new, delete");
    }

    #[test]
    fn build_and_measure() {
        let cfg = BenchConfig {
            block_size: 512,
            segment_bytes: 8 * 512,
            capacity: 4 << 20,
            inode_count: 64,
            cpu_slowdown: 100.0,
            runs: 1,
        };
        let mut fs = cfg.build_fs(Version::New);
        let clock = Arc::clone(fs.ld().device().clock());
        let (_, timing) = measure(&clock, cfg.cpu_slowdown, || {
            let ino = fs.create("/x")?;
            fs.write_at(ino, 0, &[1u8; 512])?;
            fs.flush()
        })
        .unwrap();
        assert!(timing.disk > Duration::ZERO);
        assert!(timing.virtual_secs() > 0.0);
    }

    #[test]
    fn percent_and_median_math() {
        assert!((percent_slower(100.0, 93.0) - 7.0).abs() < 1e-9);
        assert_eq!(percent_slower(0.0, 5.0), 0.0);
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0]), 4.0);
    }

    #[test]
    fn args_parsing() {
        let args: Vec<String> = ["--quick", "--runs", "5", "--cpu-slowdown", "250"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = BenchConfig::from_args(&args);
        assert_eq!(cfg.runs, 5);
        assert_eq!(cfg.cpu_slowdown, 250.0);
        assert_eq!(cfg.capacity, BenchConfig::quick().capacity);
    }
}
