#!/usr/bin/env python3
"""Validate the observability exports produced by the trace and sampler
paths — used by the CI obs-smoke job and runnable locally:

    cargo run --release -q -p ld-bench --bin mt_throughput -- \
        --quick --threads 8 --trace-out trace.json --sampler-out samples.jsonl
    python3 scripts/check_obs.py trace.json samples.jsonl

Checks, stdlib only:

* the Chrome trace is valid JSON in Trace Event Format: a traceEvents
  array of "X" (complete), "i" (instant), and "M" (metadata) events;
* every "X" span has name/ts/dur/pid/tid, and spans nest properly per
  thread (no span half-overlaps another on the same tid);
* the per-stage span names the commit path must emit are all present
  (queue_wait, seal, barrier_wait under a commit span);
* at least one traced commit is cross-thread: spans sharing one trace
  id (args.trace) appear on more than one tid;
* the sampler JSONL parses line by line, t_ms never moves backwards,
  and the cumulative counters are monotonic.

Exit status 0 on success; prints the first failure and exits 1.
"""

import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_chrome_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    spans_by_tid = defaultdict(list)
    names = set()
    tids_by_trace = defaultdict(set)
    for e in events:
        ph = e.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"{path}: unexpected event phase {ph!r}: {e}")
        if ph != "X":
            continue
        for key in ("name", "ts", "pid", "tid", "dur"):
            if key not in e:
                fail(f"{path}: X event missing {key!r}: {e}")
        names.add(e["name"])
        spans_by_tid[e["tid"]].append((e["ts"], e["ts"] + e["dur"], e["name"]))
        trace = e.get("args", {}).get("trace")
        if trace:
            tids_by_trace[trace].add(e["tid"])

    for required in ("commit", "queue_wait", "seal", "barrier_wait"):
        if required not in names:
            fail(f"{path}: no {required!r} span in trace (got {sorted(names)})")

    # Spans on one thread must nest: sorted by (start, -end), each span
    # either contains the next or ends before it starts. Span begin
    # timestamps come from the trace ring's clock while durations come
    # from per-stage timers, so allow a few microseconds of rounding
    # slack before calling a half-overlap.
    eps = 4.0
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start + eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                fail(
                    f"{path}: tid {tid}: span {name} [{start},{end}) "
                    f"half-overlaps {stack[-1][2]} [{stack[-1][0]},{stack[-1][1]})"
                )
            stack.append((start, end, name))

    cross = [t for t, tids in tids_by_trace.items() if len(tids) > 1]
    if not cross:
        fail(f"{path}: no commit trace id spans more than one thread")

    n_spans = sum(len(s) for s in spans_by_tid.values())
    print(
        f"check_obs: {path}: {len(events)} events, {n_spans} spans on "
        f"{len(spans_by_tid)} threads, {len(cross)} cross-thread commits"
    )


def check_sampler_jsonl(path):
    prev_t = -1
    prev_commits = -1
    rows = 0
    with open(path) as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{n}: not JSON: {e}")
            if "t_ms" not in row or "snapshot" not in row:
                fail(f"{path}:{n}: missing t_ms or snapshot")
            t = row["t_ms"]
            if t < prev_t:
                fail(f"{path}:{n}: t_ms went backwards ({prev_t} -> {t})")
            prev_t = t
            lld = row["snapshot"].get("lld")
            if not isinstance(lld, dict):
                fail(f"{path}:{n}: snapshot.lld missing")
            commits = lld.get("arus_committed", 0)
            if commits < prev_commits:
                fail(
                    f"{path}:{n}: arus_committed went backwards "
                    f"({prev_commits} -> {commits})"
                )
            prev_commits = commits
            rows += 1
    if rows < 2:
        fail(f"{path}: need at least 2 samples, got {rows}")
    print(f"check_obs: {path}: {rows} samples over {prev_t} ms, "
          f"{prev_commits} commits")


def main(argv):
    if len(argv) != 3:
        print(f"usage: {argv[0]} <chrome-trace.json> <samples.jsonl>",
              file=sys.stderr)
        return 2
    check_chrome_trace(argv[1])
    check_sampler_jsonl(argv[2])
    print("check_obs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
